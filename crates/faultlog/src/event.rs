use serde::{Deserialize, Serialize};

use crate::{LogError, SimDate};

/// Cause categories used in the paper's outage notifications (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OutageCause {
    /// Failure of SAN I/O hardware (RAID controllers, FC ports, shelves).
    IoHardware,
    /// Batch / scheduling system failure.
    BatchSystem,
    /// Network failure between compute nodes and the CFS.
    Network,
    /// Lustre / file-system software failure.
    FileSystem,
}

impl OutageCause {
    /// Human-readable label matching Table 1's "Cause of Failure" column.
    pub fn label(&self) -> &'static str {
        match self {
            OutageCause::IoHardware => "I/O hardware",
            OutageCause::BatchSystem => "Batch system",
            OutageCause::Network => "Network",
            OutageCause::FileSystem => "File system",
        }
    }

    /// All cause categories.
    pub fn all() -> [OutageCause; 4] {
        [
            OutageCause::IoHardware,
            OutageCause::BatchSystem,
            OutageCause::Network,
            OutageCause::FileSystem,
        ]
    }
}

impl std::fmt::Display for OutageCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A user-visible CFS outage window (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageRecord {
    /// Cause of the outage.
    pub cause: OutageCause,
    /// Outage start, hours since the start of the observation window.
    pub start_hours: f64,
    /// Outage end, hours since the start of the observation window.
    pub end_hours: f64,
}

impl OutageRecord {
    /// Duration of the outage in hours.
    pub fn duration(&self) -> f64 {
        (self.end_hours - self.start_hours).max(0.0)
    }
}

/// A Lustre mount failure reported by one compute node (the raw events
/// behind Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MountFailure {
    /// Event time, hours since the start of the observation window.
    pub time_hours: f64,
    /// Identifier of the compute node that reported the failure.
    pub node_id: u32,
}

/// Outcome of a batch job (Table 3 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed,
    /// The job failed because of a transient network error (compute node ↔
    /// CFS or compute node ↔ login node connectivity).
    FailedTransientNetwork,
    /// The job failed because of any other error (software error, CFS
    /// failure, …).
    FailedOther,
}

impl JobOutcome {
    /// Whether the job failed.
    pub fn is_failure(&self) -> bool {
        !matches!(self, JobOutcome::Completed)
    }
}

/// A batch-job record (the raw events behind Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Submission time, hours since the start of the observation window.
    pub submit_hours: f64,
    /// Outcome of the job.
    pub outcome: JobOutcome,
}

/// A disk failure/replacement event (the raw events behind Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskReplacement {
    /// Event time, hours since the start of the observation window.
    pub time_hours: f64,
    /// Index of the failed disk within the scratch partition (0-based).
    pub disk_id: u32,
}

/// Kinds of events a failure log can contain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EventKind {
    /// A CFS outage window.
    Outage(OutageRecord),
    /// A per-node Lustre mount failure.
    MountFailure(MountFailure),
    /// A batch-job record.
    Job(JobRecord),
    /// A disk failure/replacement.
    DiskReplacement(DiskReplacement),
}

/// One timestamped log event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// Event time, hours since the start of the observation window. For
    /// outages this is the start of the outage.
    pub time_hours: f64,
    /// The event payload.
    pub kind: EventKind,
}

impl LogEvent {
    /// Creates an event, using the payload's own timestamp.
    pub fn new(kind: EventKind) -> Self {
        let time_hours = match &kind {
            EventKind::Outage(o) => o.start_hours,
            EventKind::MountFailure(m) => m.time_hours,
            EventKind::Job(j) => j.submit_hours,
            EventKind::DiskReplacement(d) => d.time_hours,
        };
        LogEvent { time_hours, kind }
    }
}

/// A complete failure log: an observation window plus a time-ordered list of
/// events.
///
/// The window is described both in relative hours (used by every analysis)
/// and by its calendar origin (used only for rendering paper-style tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureLog {
    origin: SimDate,
    window_hours: f64,
    events: Vec<LogEvent>,
}

impl FailureLog {
    /// Creates an empty log covering `window_hours` hours starting at
    /// `origin`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::InvalidConfig`] if the window is not finite and
    /// strictly positive.
    pub fn new(origin: SimDate, window_hours: f64) -> Result<Self, LogError> {
        if !(window_hours.is_finite() && window_hours > 0.0) {
            return Err(LogError::InvalidConfig {
                reason: format!("observation window must be positive, got {window_hours} h"),
            });
        }
        Ok(FailureLog { origin, window_hours, events: Vec::new() })
    }

    /// Calendar timestamp of the start of the observation window.
    pub fn origin(&self) -> SimDate {
        self.origin
    }

    /// Length of the observation window in hours.
    pub fn window_hours(&self) -> f64 {
        self.window_hours
    }

    /// Appends an event (events may be pushed out of order; call
    /// [`FailureLog::sort`] or rely on the generator which sorts on output).
    pub fn push(&mut self, event: LogEvent) {
        self.events.push(event);
    }

    /// Sorts events by time.
    pub fn sort(&mut self) {
        self.events.sort_by(|a, b| {
            a.time_hours.partial_cmp(&b.time_hours).expect("event times are finite")
        });
    }

    /// All events in the log.
    pub fn events(&self) -> &[LogEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All outage records, in time order.
    pub fn outages(&self) -> Vec<OutageRecord> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Outage(o) => Some(o),
                _ => None,
            })
            .collect()
    }

    /// All mount-failure events, in time order.
    pub fn mount_failures(&self) -> Vec<MountFailure> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MountFailure(m) => Some(m),
                _ => None,
            })
            .collect()
    }

    /// All job records, in time order.
    pub fn jobs(&self) -> Vec<JobRecord> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Job(j) => Some(j),
                _ => None,
            })
            .collect()
    }

    /// All disk replacements, in time order.
    pub fn disk_replacements(&self) -> Vec<DiskReplacement> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::DiskReplacement(d) => Some(d),
                _ => None,
            })
            .collect()
    }

    /// Converts a relative event time to a calendar date for display.
    pub fn date_of(&self, time_hours: f64) -> SimDate {
        self.origin.plus_hours(time_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> FailureLog {
        let mut log = FailureLog::new(SimDate::new(2007, 7, 1, 0, 0), 2000.0).unwrap();
        log.push(LogEvent::new(EventKind::Outage(OutageRecord {
            cause: OutageCause::IoHardware,
            start_hours: 503.05,
            end_hours: 516.0,
        })));
        log.push(LogEvent::new(EventKind::MountFailure(MountFailure {
            time_hours: 50.0,
            node_id: 7,
        })));
        log.push(LogEvent::new(EventKind::Job(JobRecord {
            submit_hours: 10.0,
            outcome: JobOutcome::Completed,
        })));
        log.push(LogEvent::new(EventKind::DiskReplacement(DiskReplacement {
            time_hours: 1571.0,
            disk_id: 42,
        })));
        log
    }

    #[test]
    fn window_must_be_positive() {
        assert!(FailureLog::new(SimDate::new(2007, 1, 1, 0, 0), 0.0).is_err());
        assert!(FailureLog::new(SimDate::new(2007, 1, 1, 0, 0), -5.0).is_err());
        assert!(FailureLog::new(SimDate::new(2007, 1, 1, 0, 0), f64::NAN).is_err());
    }

    #[test]
    fn events_are_filtered_by_kind() {
        let log = sample_log();
        assert_eq!(log.len(), 4);
        assert!(!log.is_empty());
        assert_eq!(log.outages().len(), 1);
        assert_eq!(log.mount_failures().len(), 1);
        assert_eq!(log.jobs().len(), 1);
        assert_eq!(log.disk_replacements().len(), 1);
        assert_eq!(log.mount_failures()[0].node_id, 7);
    }

    #[test]
    fn sort_orders_events_by_time() {
        let mut log = sample_log();
        log.sort();
        let times: Vec<f64> = log.events().iter().map(|e| e.time_hours).collect();
        let mut sorted = times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(times, sorted);
    }

    #[test]
    fn log_event_takes_time_from_payload() {
        let e = LogEvent::new(EventKind::Job(JobRecord {
            submit_hours: 99.5,
            outcome: JobOutcome::FailedOther,
        }));
        assert_eq!(e.time_hours, 99.5);
    }

    #[test]
    fn outage_duration_and_cause_labels() {
        let o =
            OutageRecord { cause: OutageCause::IoHardware, start_hours: 10.0, end_hours: 22.95 };
        assert!((o.duration() - 12.95).abs() < 1e-12);
        assert_eq!(OutageCause::IoHardware.to_string(), "I/O hardware");
        assert_eq!(OutageCause::all().len(), 4);
        // Reversed interval clamps to zero rather than producing negative downtime.
        let bad = OutageRecord { cause: OutageCause::Network, start_hours: 5.0, end_hours: 4.0 };
        assert_eq!(bad.duration(), 0.0);
    }

    #[test]
    fn job_outcome_failure_flag() {
        assert!(!JobOutcome::Completed.is_failure());
        assert!(JobOutcome::FailedTransientNetwork.is_failure());
        assert!(JobOutcome::FailedOther.is_failure());
    }

    #[test]
    fn date_of_uses_origin() {
        let log = sample_log();
        let d = log.date_of(24.0);
        assert_eq!((d.month(), d.day()), (7, 2));
        assert_eq!(log.origin(), SimDate::new(2007, 7, 1, 0, 0));
        assert_eq!(log.window_hours(), 2000.0);
    }
}
