//! Analyses that turn a failure log into the dependability measures and
//! model parameters the paper derives from the ABE logs (Tables 1–4).

use serde::{Deserialize, Serialize};

use probdist::fitting::{fit_exponential, fit_weibull, ExponentialFit, Lifetime, WeibullFit};
use probdist::{Afr, Mtbf};

use crate::event::{FailureLog, JobOutcome, OutageCause, OutageRecord};
use crate::filter::{coalesce_mount_failures, coalesce_outages, is_cfs_outage, MountStorm};
use crate::{LogError, SimDate};

/// Number of hours in one week, used for per-week replacement rates.
pub const HOURS_PER_WEEK: f64 = 168.0;

// ---------------------------------------------------------------------------
// Table 1: outages and availability
// ---------------------------------------------------------------------------

/// One rendered row of a Table-1 style outage report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageRow {
    /// Cause label ("I/O hardware", …).
    pub cause: String,
    /// Calendar start time.
    pub start: SimDate,
    /// Calendar end time.
    pub end: SimDate,
    /// Duration in hours.
    pub hours: f64,
}

/// Availability analysis of the user-visible outage notifications
/// (reproduces Table 1 and the 0.97–0.98 SAN availability estimate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageAnalysis {
    outages: Vec<OutageRecord>,
    window_hours: f64,
    origin: SimDate,
}

impl OutageAnalysis {
    /// Builds the analysis from a log, coalescing same-cause notifications
    /// that are less than one hour apart into single incidents.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::EmptyLog`] if the log contains no outage records.
    pub fn from_log(log: &FailureLog) -> Result<Self, LogError> {
        let raw = log.outages();
        if raw.is_empty() {
            return Err(LogError::EmptyLog { analysis: "outage" });
        }
        let outages = coalesce_outages(&raw, 1.0);
        Ok(OutageAnalysis { outages, window_hours: log.window_hours(), origin: log.origin() })
    }

    /// The coalesced outage incidents.
    pub fn outages(&self) -> &[OutageRecord] {
        &self.outages
    }

    /// Total downtime over the observation window, hours.
    pub fn total_downtime_hours(&self) -> f64 {
        self.outages.iter().map(super::event::OutageRecord::duration).sum()
    }

    /// Availability of the storage system over the window:
    /// `1 − downtime / window`.
    pub fn availability(&self) -> f64 {
        (1.0 - self.total_downtime_hours() / self.window_hours).clamp(0.0, 1.0)
    }

    /// Availability counting only CFS-attributable outages (I/O hardware and
    /// file-system causes) — the measure the CFS availability reward of the
    /// simulation model is compared against.
    pub fn cfs_availability(&self) -> f64 {
        let downtime: f64 = self
            .outages
            .iter()
            .filter(|o| is_cfs_outage(o.cause))
            .map(super::event::OutageRecord::duration)
            .sum();
        (1.0 - downtime / self.window_hours).clamp(0.0, 1.0)
    }

    /// Downtime hours attributed to each cause.
    pub fn downtime_by_cause(&self) -> Vec<(OutageCause, f64)> {
        OutageCause::all()
            .iter()
            .map(|&c| {
                (
                    c,
                    self.outages
                        .iter()
                        .filter(|o| o.cause == c)
                        .map(super::event::OutageRecord::duration)
                        .sum(),
                )
            })
            .collect()
    }

    /// Renders the outages as Table-1 style rows with calendar timestamps.
    pub fn rows(&self) -> Vec<OutageRow> {
        self.outages
            .iter()
            .map(|o| OutageRow {
                cause: o.cause.label().to_string(),
                start: self.origin.plus_hours(o.start_hours),
                end: self.origin.plus_hours(o.end_hours),
                hours: o.duration(),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Table 2: mount failures per day
// ---------------------------------------------------------------------------

/// One rendered row of a Table-2 style mount-failure report: a calendar day
/// and the number of compute nodes that reported a Lustre mount failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MountFailureDay {
    /// The calendar day (time-of-day fields are zero).
    pub date: SimDate,
    /// Number of distinct nodes that reported a mount failure that day.
    pub nodes: usize,
}

/// Mount-failure analysis (reproduces Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MountFailureAnalysis {
    days: Vec<MountFailureDay>,
    storms: Vec<MountStorm>,
    total_reports: usize,
}

impl MountFailureAnalysis {
    /// Builds the analysis from a log. Days with no mount failures are
    /// omitted, matching the paper's presentation.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::EmptyLog`] if the log contains no mount-failure
    /// records.
    pub fn from_log(log: &FailureLog) -> Result<Self, LogError> {
        let failures = log.mount_failures();
        if failures.is_empty() {
            return Err(LogError::EmptyLog { analysis: "mount failure" });
        }
        let storms = coalesce_mount_failures(&failures, 1.0);
        let origin = log.origin();

        // Aggregate distinct nodes per calendar day.
        let mut per_day: std::collections::BTreeMap<i64, std::collections::BTreeSet<u32>> =
            std::collections::BTreeMap::new();
        for f in &failures {
            let day = origin.plus_hours(f.time_hours).day_index_since(origin);
            per_day.entry(day).or_default().insert(f.node_id);
        }
        let days = per_day
            .into_iter()
            .map(|(day, nodes)| MountFailureDay {
                date: origin.plus_hours(day as f64 * 24.0),
                nodes: nodes.len(),
            })
            .collect();

        Ok(MountFailureAnalysis { days, storms, total_reports: failures.len() })
    }

    /// Per-day counts of nodes reporting mount failures (only days with at
    /// least one report).
    pub fn days(&self) -> &[MountFailureDay] {
        &self.days
    }

    /// The coalesced mount-failure storms.
    pub fn storms(&self) -> &[MountStorm] {
        &self.storms
    }

    /// Total number of raw mount-failure report lines.
    pub fn total_reports(&self) -> usize {
        self.total_reports
    }

    /// The largest single-day node count (591 in the paper's Table 2).
    pub fn peak_day_nodes(&self) -> usize {
        self.days.iter().map(|d| d.nodes).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Table 3: job statistics
// ---------------------------------------------------------------------------

/// Job execution statistics (reproduces Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobAnalysis {
    /// Total number of jobs submitted during the window.
    pub total_jobs: usize,
    /// Jobs that failed because of transient network errors.
    pub transient_failures: usize,
    /// Jobs that failed because of other/file-system errors.
    pub other_failures: usize,
    /// Observation window, hours.
    pub window_hours: f64,
}

impl JobAnalysis {
    /// Builds the analysis from a log.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::EmptyLog`] if the log contains no job records.
    pub fn from_log(log: &FailureLog) -> Result<Self, LogError> {
        let jobs = log.jobs();
        if jobs.is_empty() {
            return Err(LogError::EmptyLog { analysis: "job" });
        }
        Ok(JobAnalysis {
            total_jobs: jobs.len(),
            transient_failures: jobs
                .iter()
                .filter(|j| j.outcome == JobOutcome::FailedTransientNetwork)
                .count(),
            other_failures: jobs.iter().filter(|j| j.outcome == JobOutcome::FailedOther).count(),
            window_hours: log.window_hours(),
        })
    }

    /// Jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.total_jobs - self.transient_failures - self.other_failures
    }

    /// Ratio of transient-network failures to other failures (≈5 in the
    /// paper).
    pub fn transient_to_other_ratio(&self) -> f64 {
        if self.other_failures == 0 {
            f64::INFINITY
        } else {
            self.transient_failures as f64 / self.other_failures as f64
        }
    }

    /// Probability that an individual job fails for any reason.
    pub fn job_failure_probability(&self) -> f64 {
        (self.transient_failures + self.other_failures) as f64 / self.total_jobs as f64
    }

    /// Average job submissions per hour (the "Job request per hour" row of
    /// Table 5, 12–15 for ABE).
    pub fn jobs_per_hour(&self) -> f64 {
        self.total_jobs as f64 / self.window_hours
    }
}

// ---------------------------------------------------------------------------
// Table 4: disk replacements and Weibull survival analysis
// ---------------------------------------------------------------------------

/// Disk-replacement analysis (reproduces Table 4): weekly replacement
/// counts, a Weibull survival fit of the underlying lifetimes, and MTBF
/// estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskReplacementAnalysis {
    weekly_counts: Vec<usize>,
    total_replacements: usize,
    disks: u32,
    window_hours: f64,
}

impl DiskReplacementAnalysis {
    /// Builds the analysis from a log, given the number of disk slots in the
    /// partition (480 for ABE's scratch partition).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::EmptyLog`] if the log contains no disk
    /// replacements and [`LogError::InvalidConfig`] if `disks` is zero.
    pub fn from_log(log: &FailureLog, disks: u32) -> Result<Self, LogError> {
        if disks == 0 {
            return Err(LogError::InvalidConfig { reason: "disk count must be positive".into() });
        }
        let replacements = log.disk_replacements();
        if replacements.is_empty() {
            return Err(LogError::EmptyLog { analysis: "disk replacement" });
        }
        let weeks = (log.window_hours() / HOURS_PER_WEEK).ceil() as usize;
        let mut weekly_counts = vec![0usize; weeks.max(1)];
        for r in &replacements {
            let week = ((r.time_hours / HOURS_PER_WEEK) as usize).min(weekly_counts.len() - 1);
            weekly_counts[week] += 1;
        }
        Ok(DiskReplacementAnalysis {
            weekly_counts,
            total_replacements: replacements.len(),
            disks,
            window_hours: log.window_hours(),
        })
    }

    /// Replacement counts per calendar week of the observation window.
    pub fn weekly_counts(&self) -> &[usize] {
        &self.weekly_counts
    }

    /// Total number of replacements.
    pub fn total_replacements(&self) -> usize {
        self.total_replacements
    }

    /// Mean replacements per week (0–2 for ABE).
    pub fn mean_per_week(&self) -> f64 {
        self.total_replacements as f64 / (self.window_hours / HOURS_PER_WEEK)
    }

    /// Converts the replacement log into right-censored lifetimes: each
    /// replacement is an observed failure at its slot's age, and every slot
    /// contributes a final censored observation for the disk still running
    /// at the end of the window.
    pub fn to_lifetimes(&self, log: &FailureLog) -> Vec<Lifetime> {
        let mut last_replacement = vec![0.0_f64; self.disks as usize];
        let mut lifetimes = Vec::new();
        for r in log.disk_replacements() {
            let slot = r.disk_id as usize % self.disks as usize;
            let age = r.time_hours - last_replacement[slot];
            if age > 0.0 {
                lifetimes.push(Lifetime::failure(age).expect("positive age"));
            }
            last_replacement[slot] = r.time_hours;
        }
        for &since in &last_replacement {
            let censored_age = self.window_hours - since;
            if censored_age > 0.0 {
                lifetimes.push(Lifetime::censored(censored_age).expect("positive age"));
            }
        }
        lifetimes
    }

    /// Weibull survival fit of the disk lifetimes (the paper: shape ≈ 0.70,
    /// standard deviation ≈ 0.19).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors (e.g. fewer than two observed failures).
    pub fn weibull_fit(&self, log: &FailureLog) -> Result<WeibullFit, LogError> {
        Ok(fit_weibull(&self.to_lifetimes(log))?)
    }

    /// Constant-rate (exponential) fit of the disk lifetimes, giving the
    /// MTBF / AFR estimate used to parameterise the simulation model.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn exponential_fit(&self, log: &FailureLog) -> Result<ExponentialFit, LogError> {
        Ok(fit_exponential(&self.to_lifetimes(log))?)
    }

    /// The MTBF estimate from the exponential fit.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn estimated_mtbf(&self, log: &FailureLog) -> Result<Mtbf, LogError> {
        Ok(self.exponential_fit(log)?.mtbf())
    }

    /// The AFR estimate from the exponential fit.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn estimated_afr(&self, log: &FailureLog) -> Result<Afr, LogError> {
        Ok(self.estimated_mtbf(log)?.to_afr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DiskReplacement, EventKind, LogEvent, MountFailure, OutageRecord};
    use crate::generator::{LogGenConfig, LogGenerator};

    fn abe_log(seed: u64) -> FailureLog {
        LogGenerator::new(LogGenConfig::abe_calibrated()).generate(seed).unwrap()
    }

    #[test]
    fn outage_availability_is_in_the_published_band() {
        // Average over several seeds so one unlucky draw does not dominate.
        let mut availability = 0.0;
        let runs = 6;
        for seed in 0..runs {
            availability += OutageAnalysis::from_log(&abe_log(seed)).unwrap().availability();
        }
        availability /= runs as f64;
        // The paper estimates 0.97–0.98; the synthetic logs should land near
        // that band (give a small margin for sampling noise).
        assert!(availability > 0.955 && availability < 0.995, "availability {availability}");
    }

    #[test]
    fn outage_rows_and_cause_breakdown_are_consistent() {
        let log = abe_log(1);
        let a = OutageAnalysis::from_log(&log).unwrap();
        let rows = a.rows();
        assert_eq!(rows.len(), a.outages().len());
        let total_from_rows: f64 = rows.iter().map(|r| r.hours).sum();
        assert!((total_from_rows - a.total_downtime_hours()).abs() < 1e-9);
        let total_by_cause: f64 = a.downtime_by_cause().iter().map(|(_, h)| h).sum();
        assert!((total_by_cause - a.total_downtime_hours()).abs() < 1e-9);
        assert!(a.cfs_availability() >= a.availability());
    }

    #[test]
    fn handcrafted_outage_availability() {
        let mut log = FailureLog::new(SimDate::new(2007, 7, 1, 0, 0), 1000.0).unwrap();
        log.push(LogEvent::new(EventKind::Outage(OutageRecord {
            cause: OutageCause::IoHardware,
            start_hours: 100.0,
            end_hours: 110.0,
        })));
        log.push(LogEvent::new(EventKind::Outage(OutageRecord {
            cause: OutageCause::Network,
            start_hours: 500.0,
            end_hours: 510.0,
        })));
        let a = OutageAnalysis::from_log(&log).unwrap();
        assert!((a.total_downtime_hours() - 20.0).abs() < 1e-12);
        assert!((a.availability() - 0.98).abs() < 1e-12);
        // Only the I/O hardware outage counts against the CFS.
        assert!((a.cfs_availability() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn empty_logs_are_rejected_by_every_analysis() {
        let log = FailureLog::new(SimDate::new(2007, 7, 1, 0, 0), 100.0).unwrap();
        assert!(OutageAnalysis::from_log(&log).is_err());
        assert!(MountFailureAnalysis::from_log(&log).is_err());
        assert!(JobAnalysis::from_log(&log).is_err());
        assert!(DiskReplacementAnalysis::from_log(&log, 480).is_err());
    }

    #[test]
    fn mount_failure_days_count_distinct_nodes() {
        let mut log = FailureLog::new(SimDate::new(2007, 7, 1, 0, 0), 100.0).unwrap();
        // Three reports on day 0 from two distinct nodes, one report on day 2.
        for (t, node) in [(1.0, 5), (1.1, 5), (2.0, 9), (49.0, 3)] {
            log.push(LogEvent::new(EventKind::MountFailure(MountFailure {
                time_hours: t,
                node_id: node,
            })));
        }
        let a = MountFailureAnalysis::from_log(&log).unwrap();
        assert_eq!(a.days().len(), 2);
        assert_eq!(a.days()[0].nodes, 2);
        assert_eq!(a.days()[1].nodes, 1);
        assert_eq!(a.total_reports(), 4);
        assert_eq!(a.peak_day_nodes(), 2);
        assert!(!a.storms().is_empty());
    }

    #[test]
    fn mount_failure_analysis_on_generated_log_matches_table2_shape() {
        let a = MountFailureAnalysis::from_log(&abe_log(2)).unwrap();
        // Table 2 has 12 storm days over the window with sizes 2..591.
        assert!(!a.days().is_empty());
        assert!(a.peak_day_nodes() <= 1200);
        assert!(a.peak_day_nodes() >= 2);
    }

    #[test]
    fn job_analysis_reproduces_table3_shape() {
        let a = JobAnalysis::from_log(&abe_log(3)).unwrap();
        assert!(a.total_jobs > 40_000);
        assert_eq!(a.completed() + a.transient_failures + a.other_failures, a.total_jobs);
        let ratio = a.transient_to_other_ratio();
        assert!(ratio > 3.0 && ratio < 12.0, "ratio {ratio}");
        assert!(a.jobs_per_hour() > 11.0 && a.jobs_per_hour() < 16.0);
        assert!(a.job_failure_probability() < 0.1);
    }

    #[test]
    fn job_ratio_handles_zero_other_failures() {
        let mut log = FailureLog::new(SimDate::new(2007, 7, 1, 0, 0), 10.0).unwrap();
        log.push(LogEvent::new(EventKind::Job(crate::event::JobRecord {
            submit_hours: 1.0,
            outcome: JobOutcome::FailedTransientNetwork,
        })));
        let a = JobAnalysis::from_log(&log).unwrap();
        assert_eq!(a.transient_to_other_ratio(), f64::INFINITY);
    }

    #[test]
    fn disk_replacement_rate_and_weekly_histogram() {
        let log = abe_log(4);
        let a = DiskReplacementAnalysis::from_log(&log, 480).unwrap();
        assert_eq!(a.weekly_counts().iter().sum::<usize>(), a.total_replacements());
        assert!(
            a.mean_per_week() > 0.0 && a.mean_per_week() < 4.0,
            "per week {}",
            a.mean_per_week()
        );
    }

    #[test]
    fn lifetimes_cover_every_slot_and_replacement() {
        let mut log = FailureLog::new(SimDate::new(2007, 9, 5, 0, 0), 1000.0).unwrap();
        for (t, id) in [(100.0, 0), (400.0, 0), (250.0, 3)] {
            log.push(LogEvent::new(EventKind::DiskReplacement(DiskReplacement {
                time_hours: t,
                disk_id: id,
            })));
        }
        log.sort();
        let a = DiskReplacementAnalysis::from_log(&log, 4).unwrap();
        let lifetimes = a.to_lifetimes(&log);
        // 3 observed failures + 4 censored slots.
        assert_eq!(lifetimes.len(), 7);
        assert_eq!(lifetimes.iter().filter(|l| l.is_failure()).count(), 3);
        // Slot 0 failed at 100 and again 300 hours later.
        let failure_ages: Vec<f64> = lifetimes
            .iter()
            .filter(|l| l.is_failure())
            .map(probdist::fitting::Lifetime::time)
            .collect();
        assert!(failure_ages.contains(&100.0));
        assert!(failure_ages.contains(&300.0));
    }

    #[test]
    fn weibull_fit_recovers_infant_mortality_shape_on_large_population() {
        // Use a larger synthetic population so the fit has enough observed
        // failures to be stable, mirroring the n = 480 survival analysis.
        let mut cfg = LogGenConfig::abe_calibrated();
        cfg.disks = 20_000;
        cfg.window_hours = 2000.0;
        let log = LogGenerator::new(cfg).generate(5).unwrap();
        let a = DiskReplacementAnalysis::from_log(&log, 20_000).unwrap();
        let fit = a.weibull_fit(&log).unwrap();
        assert!((fit.shape - 0.7).abs() < 0.12, "shape {}", fit.shape);
        // With infant mortality and a short observation window of brand-new
        // disks, the window-local exponential estimate overstates the
        // long-run failure rate — exactly why the paper calls its scale
        // estimate "insignificant" and calibrates the MTBF by simulation
        // instead. The estimate should still be the right order of magnitude.
        let afr = a.estimated_afr(&log).unwrap();
        assert!(afr.percent() > 1.0 && afr.percent() < 30.0, "afr {}", afr.percent());
        let mtbf = a.estimated_mtbf(&log).unwrap();
        assert!(mtbf.hours() > 25_000.0, "mtbf {}", mtbf.hours());
    }
}
