//! Property tests of the reachability explorer over randomly generated
//! token-conserving SANs.
//!
//! The generator draws models whose activities each move exactly one token
//! between places (possibly splitting probabilistically across cases), so
//! the total token count is invariant and the reachable state space is
//! finite by construction — at most `C(T + P - 1, P - 1)` markings for `T`
//! tokens over `P` places. Three properties pin the explorer, whatever
//! structure the generator draws:
//!
//! * **Completeness** — exploration finishes under the default budget and
//!   the computed bounds respect the conservation law.
//! * **Containment** — every marking visited by a traced simulation run is
//!   inside the computed reachable set (the explorer never
//!   under-approximates).
//! * **Solver agreement** — whenever the model is admissible, the
//!   statically assembled sparse generator and the dense Gaussian solver
//!   agree on the steady state to 1e-10.

use proptest::prelude::*;

use probdist::{Dist, Exponential, SimRng};
use sanet::{Marking, Model, ModelBuilder, PlaceId, Simulator};

/// Builds a random token-conserving SAN: 2–5 places sharing 2–6 tokens, a
/// ring of unit-token moves (so no marking is a dead end), plus random
/// chord activities — some with marking-dependent exponential rates, some
/// splitting their output across two probabilistic cases.
fn random_conserving_model(structure: u64) -> Model {
    let mut g = SimRng::seed_from_u64(structure);
    let mut pick = |n: u64| -> u64 { g.next_u64() % n };

    let mut b = ModelBuilder::new("random-reach");
    let num_places = 2 + pick(4) as usize;
    let places: Vec<PlaceId> = (0..num_places)
        .map(|i| b.add_place(&format!("p{i}"), u64::from(i == 0) * (2 + pick(5))).unwrap())
        .collect();

    // The ring guarantees strong connectivity of the token moves.
    for i in 0..num_places {
        let next = places[(i + 1) % num_places];
        b.timed_activity(
            &format!("ring{i}"),
            Exponential::from_mean(1.0 + pick(9) as f64).unwrap(),
        )
        .unwrap()
        .input_arc(places[i], 1)
        .output_arc(next, 1)
        .build()
        .unwrap();
    }

    let num_chords = pick(4) as usize;
    for c in 0..num_chords {
        let src = places[pick(places.len() as u64) as usize];
        let name = format!("chord{c}");
        let builder = if pick(2) == 0 {
            let watched = places[pick(places.len() as u64) as usize];
            b.timed_activity_fn(&name, move |m: &Marking| {
                let n = m.tokens(watched).max(1) as f64;
                Dist::Exponential(Exponential::new(0.05 * n).unwrap())
            })
            .unwrap()
            .timing_reads(&[watched])
        } else {
            b.timed_activity(&name, Exponential::from_mean(2.0 + pick(9) as f64).unwrap()).unwrap()
        };
        let builder = builder.input_arc(src, 1);
        if pick(2) == 0 {
            // Split the moved token across two destinations.
            let a = places[pick(places.len() as u64) as usize];
            let b2 = places[pick(places.len() as u64) as usize];
            builder.case(0.3).output_arc(a, 1).case(0.7).output_arc(b2, 1).build().unwrap();
        } else {
            let dst = places[pick(places.len() as u64) as usize];
            builder.output_arc(dst, 1).build().unwrap();
        }
    }

    b.build().unwrap()
}

/// `C(t + p - 1, p - 1)`: the number of ways to distribute `t` identical
/// tokens over `p` places — an upper bound on the reachable set.
fn compositions(t: u64, p: u64) -> u64 {
    let n = t + p - 1;
    let k = (p - 1).min(t);
    let mut out = 1u64;
    for i in 1..=k {
        out = out * (n - k + i) / i;
    }
    out
}

proptest! {
    #[test]
    fn random_conserving_sans_explore_completely(structure in any::<u64>()) {
        let model = random_conserving_model(structure);
        let report = model.analyze();
        prop_assert!(report.complete(), "conserving model must fit the default budget");
        let total: u64 = report.place_bounds().len() as u64;
        let tokens: u64 = model.initial_marking().total_tokens();
        prop_assert!(report.num_states() as u64 <= compositions(tokens, total));
        for bound in report.place_bounds() {
            prop_assert!(*bound <= tokens, "bound {bound} exceeds the conserved total {tokens}");
        }
        prop_assert_eq!(report.num_dead_ends(), 0, "the ring keeps every marking live");
    }

    #[test]
    fn traced_runs_stay_inside_the_computed_set(structure in any::<u64>()) {
        let model = random_conserving_model(structure);
        let report = model.analyze();
        prop_assert!(report.complete());
        let sim = Simulator::new(&model);
        for seed in 0..3u64 {
            let mut rng = SimRng::seed_from_u64(structure ^ seed);
            let (_, trace) = sim.run_traced(&[], 500.0, 0.0, &mut rng).unwrap();
            for tokens in sanet::reach::replay_markings(&model, &trace) {
                prop_assert!(
                    report.contains_tokens(&tokens),
                    "visited marking {:?} outside the computed reachable set",
                    tokens
                );
            }
        }
    }

    #[test]
    fn admissible_models_agree_with_the_dense_solver(structure in any::<u64>()) {
        let model = random_conserving_model(structure);
        let report = model.analyze();
        prop_assert!(report.complete());
        // The ring makes every token redistribution reversible, so the
        // marking graph is irreducible and — being all-exponential with no
        // instantaneous activities — always analytically admissible.
        prop_assert!(report.is_ergodic());
        prop_assert!(report.admissibility().is_analytic(), "{:?}", report.admissibility());
        let assembly = report.assemble_generator().unwrap();
        let mut dense = sanet::ctmc::Ctmc::new(assembly.states.len()).unwrap();
        for (from, to, rate) in assembly.ctmc.transitions() {
            dense.add_transition(from, to, rate).unwrap();
        }
        let sparse_pi = assembly.ctmc.steady_state().unwrap();
        let dense_pi = dense.steady_state().unwrap();
        for (s, d) in sparse_pi.iter().zip(&dense_pi) {
            prop_assert!((s - d).abs() < 1e-10, "sparse {} vs dense {}", s, d);
        }
    }
}
