//! Differential tests pinning the event-calendar kernel bit-identical to
//! the retained naive reference kernel.
//!
//! Both kernels implement the same Möbius execution semantics; the calendar
//! kernel additionally relies on the incidence index, the marking change
//! log, and the stable/volatile schedule split. These tests assert that for
//! the same model and seed the two produce *exactly* the same reward
//! values, event counts, end times, and completion traces — which pins the
//! RNG draw sequence itself, not just the statistics. Coverage includes
//! heap tie-breaking with simultaneous deterministic firings, gate-bearing
//! activities (with and without declared enabling reads), marking-dependent
//! (volatile) timings, instantaneous cascades with probabilistic cases, and
//! a `proptest` generator over small random SANs mixing all of the above.

use proptest::prelude::*;

use probdist::{Deterministic, Dist, Exponential, SimRng, Uniform};
use sanet::reward::RewardSpec;
use sanet::{Marking, Model, ModelBuilder, PlaceId, Simulator};

/// Runs both kernels on the same model/rewards/seed and asserts exact
/// equality of results and traces.
fn assert_engines_agree(
    model: &Model,
    rewards: &[RewardSpec],
    horizon: f64,
    warmup: f64,
    seed: u64,
) {
    let sim = Simulator::new(model);
    let calendar = sim.run_traced(rewards, horizon, warmup, &mut SimRng::seed_from_u64(seed));
    let reference =
        sim.run_reference_traced(rewards, horizon, warmup, &mut SimRng::seed_from_u64(seed));
    match (calendar, reference) {
        (Ok((cal, cal_trace)), Ok((reference, ref_trace))) => {
            assert_eq!(cal, reference, "reward values / events / end time diverged (seed {seed})");
            assert_eq!(cal_trace.len(), ref_trace.len(), "trace lengths diverged (seed {seed})");
            for (i, (c, r)) in cal_trace.iter().zip(ref_trace.iter()).enumerate() {
                assert_eq!(
                    (c.time.to_bits(), c.activity, c.case),
                    (r.time.to_bits(), r.activity, r.case),
                    "trace event {i} diverged (seed {seed}): calendar fired `{}`, reference `{}`",
                    model.activity_name(c.activity),
                    model.activity_name(r.activity),
                );
            }
        }
        (Err(c), Err(r)) => assert_eq!(c, r, "kernels failed differently (seed {seed})"),
        (c, r) => panic!(
            "one kernel failed and the other did not (seed {seed}): calendar {:?}, reference {:?}",
            c.map(|(res, _)| res),
            r.map(|(res, _)| res)
        ),
    }
}

/// Simultaneous deterministic firings: four activities armed at the same
/// instant must fire in ascending index order in both kernels (the heap
/// tie-break against the linear scan).
#[test]
fn simultaneous_deterministic_firings_tie_break_identically() {
    let mut b = ModelBuilder::new("ties");
    let fuel = b.add_place("fuel", 8).unwrap();
    let sink = b.add_place("sink", 0).unwrap();
    for i in 0..4 {
        // All fire at t = 2, 4, 6, … simultaneously; each consumes shared
        // fuel, so the firing order decides who gets the last tokens.
        b.timed_activity(&format!("worker{i}"), Deterministic::new(2.0).unwrap())
            .unwrap()
            .input_arc(fuel, 1)
            .output_arc(sink, 1)
            .build()
            .unwrap();
    }
    let model = b.build().unwrap();
    let rewards = vec![
        RewardSpec::instant_of_time("sunk", move |m| m.tokens(sink) as f64),
        RewardSpec::time_averaged_rate("fuel_level", move |m| m.tokens(fuel) as f64),
    ];
    for seed in 0..16 {
        assert_engines_agree(&model, &rewards, 9.0, 0.0, seed);
    }
}

/// Gate-bearing activities with and without declared enabling reads must
/// both match the reference (which ignores declarations entirely). The
/// declared variant also matching pins the declarations sound.
#[test]
fn gated_failover_pair_matches_with_and_without_declared_reads() {
    let build = |declare: bool| {
        let mut b = ModelBuilder::new("pair");
        let working = b.add_place("working", 2).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            let n = m.tokens(working).max(1) as f64;
            Dist::Exponential(Exponential::new(n * 0.02).unwrap())
        })
        .unwrap()
        .input_arc(working, 1)
        .case(0.8)
        .output_gate(move |m: &mut Marking| {
            if m.tokens(working) == 0 {
                m.set_tokens(down, 1);
            }
        })
        .case(0.2)
        .output_gate(move |m: &mut Marking| {
            // Correlated failure takes the partner out as well.
            m.remove_tokens(working, 1);
            if m.tokens(working) == 0 {
                m.set_tokens(down, 1);
            }
        })
        .build()
        .unwrap();
        let mut repair = b
            .timed_activity("repair", Uniform::new(4.0, 12.0).unwrap())
            .unwrap()
            .enabling_predicate(move |m: &Marking| m.tokens(working) < 2)
            .output_arc(working, 1)
            .output_gate(move |m: &mut Marking| m.set_tokens(down, 0));
        if declare {
            repair = repair.enabling_reads(&[working]);
        }
        repair.build().unwrap();
        let model = b.build().unwrap();
        let rewards = vec![
            RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(down) == 0 { 1.0 } else { 0.0 },
            ),
            RewardSpec::instant_of_time("working", move |m| m.tokens(working) as f64),
        ];
        (model, rewards)
    };
    for declare in [false, true] {
        let (model, rewards) = build(declare);
        for seed in 0..8 {
            assert_engines_agree(&model, &rewards, 2_000.0, 100.0, seed);
        }
    }
}

/// An activity with no input arcs and a no-op gate fires without writing a
/// single place; volatile activities must still resample after that event
/// in both kernels (the empty-dirty-log path).
#[test]
fn write_free_firings_keep_volatile_resampling_aligned() {
    let mut b = ModelBuilder::new("writefree");
    let pop = b.add_place("pop", 5).unwrap();
    // Fires forever without touching the marking.
    b.timed_activity("tick", Exponential::from_mean(3.0).unwrap())
        .unwrap()
        .enabling_predicate(|_m| true)
        .build()
        .unwrap();
    // Volatile: must redraw its delay after every event, including ticks.
    b.timed_activity_fn("churn", move |m: &Marking| {
        let n = m.tokens(pop).max(1) as f64;
        Dist::Exponential(Exponential::new(n * 0.05).unwrap())
    })
    .unwrap()
    .input_arc(pop, 1)
    .output_arc(pop, 1)
    .build()
    .unwrap();
    let model = b.build().unwrap();
    let churn = model.activity("churn").unwrap();
    let rewards = vec![RewardSpec::impulse_total("churns", churn, 1.0)];
    for seed in 0..8 {
        assert_engines_agree(&model, &rewards, 500.0, 0.0, seed);
    }
}

/// Instantaneous routing cascades with probabilistic cases, triggered by a
/// timed arrival, must fire in the same order and draw the same case
/// uniforms in both kernels.
#[test]
fn instantaneous_cascades_match() {
    let mut b = ModelBuilder::new("cascade");
    let idle = b.add_place("idle", 1).unwrap();
    let stage1 = b.add_place("stage1", 0).unwrap();
    let stage2 = b.add_place("stage2", 0).unwrap();
    let sink_a = b.add_place("sink_a", 0).unwrap();
    let sink_b = b.add_place("sink_b", 0).unwrap();
    b.timed_activity("arrive", Exponential::from_mean(1.5).unwrap())
        .unwrap()
        .input_arc(idle, 1)
        .output_arc(stage1, 1)
        .output_arc(idle, 1)
        .build()
        .unwrap();
    b.instant_activity("hop").unwrap().input_arc(stage1, 1).output_arc(stage2, 1).build().unwrap();
    b.instant_activity("route")
        .unwrap()
        .input_arc(stage2, 1)
        .case(0.4)
        .output_arc(sink_a, 1)
        .case(0.6)
        .output_arc(sink_b, 1)
        .build()
        .unwrap();
    let model = b.build().unwrap();
    let rewards = vec![
        RewardSpec::instant_of_time("a", move |m| m.tokens(sink_a) as f64),
        RewardSpec::instant_of_time("b", move |m| m.tokens(sink_b) as f64),
    ];
    for seed in 0..8 {
        assert_engines_agree(&model, &rewards, 300.0, 0.0, seed);
    }
}

/// Builds a small random SAN from a seed: random places and token counts,
/// a mix of deterministic / exponential / marking-dependent / restart-policy
/// timed activities and fuel-bounded instantaneous activities, random arcs,
/// gates (declared or conservative), and probabilistic cases.
fn random_model(seed: u64) -> (Model, Vec<RewardSpec>) {
    let mut g = SimRng::seed_from_u64(seed);
    let mut pick = |n: u64| -> u64 { g.next_u64() % n };

    let num_places = 2 + pick(4) as usize; // 2..=5
    let num_acts = 2 + pick(5) as usize; // 2..=6

    let mut b = ModelBuilder::new("random");
    // Instantaneous activities only ever *consume* fuel, bounding every
    // cascade at a single time point.
    let fuel = b.add_place("fuel", 3).unwrap();
    let places: Vec<PlaceId> =
        (0..num_places).map(|i| b.add_place(&format!("p{i}"), 1 + pick(3)).unwrap()).collect();

    for a in 0..num_acts {
        let name = format!("a{a}");
        let kind = pick(5);
        let mut builder = match kind {
            0 => {
                // Deterministic delays from a tiny set so simultaneous
                // firings (heap ties) actually happen.
                let delay = [1.0, 2.0, 2.0, 4.0][pick(4) as usize];
                b.timed_activity(&name, Deterministic::new(delay).unwrap()).unwrap()
            }
            1 | 2 => {
                let mean = 1.0 + pick(8) as f64;
                b.timed_activity(&name, Exponential::from_mean(mean).unwrap()).unwrap()
            }
            3 => {
                let watched = places[pick(places.len() as u64) as usize];
                // Clamp the aggregate rate: random output arcs/gates can
                // grow the token mass without bound, and an unclamped
                // marking-dependent rate would turn that into an event-count
                // explosion that only slows the test down.
                let builder = b
                    .timed_activity_fn(&name, move |m: &Marking| {
                        let n = m.tokens(watched).clamp(1, 8) as f64;
                        Dist::Exponential(Exponential::new(0.15 * n).unwrap())
                    })
                    .unwrap();
                // Half the time, declare the timing read (refined restart
                // policy: keep the sample unless `watched` is written); the
                // other half keeps the conservative resample-every-event
                // policy. Both must match the reference kernel exactly.
                if pick(2) == 0 {
                    builder.timing_reads(&[watched])
                } else {
                    builder
                }
            }
            _ => b.instant_activity(&name).unwrap(),
        };
        let instant = kind >= 4;

        if instant {
            builder = builder.input_arc(fuel, 1);
        }
        // Distinct input-arc places: duplicate arcs on one place can pass
        // the per-arc enabling check yet underflow on firing, which is the
        // modelling error `fire_activity`'s debug check rejects.
        let mut arc_places: Vec<PlaceId> =
            (0..=pick(2)).map(|_| places[pick(places.len() as u64) as usize]).collect();
        arc_places.sort_unstable();
        arc_places.dedup();
        for place in arc_places {
            builder = builder.input_arc(place, 1);
        }
        if pick(2) == 0 {
            // A gate whose predicate reads one known place; half the time
            // the read is declared, half the time the scheduler must fall
            // back to conservative revisiting. Both must match the
            // reference.
            let watched = places[pick(places.len() as u64) as usize];
            let threshold = pick(3);
            builder = builder.enabling_predicate(move |m: &Marking| m.tokens(watched) > threshold);
            if pick(2) == 0 {
                builder = builder.enabling_reads(&[watched]);
            }
        }
        if !instant && kind != 3 && pick(4) == 0 {
            builder = builder.resample_on_marking_change(true);
        }

        let cases = 1 + pick(2);
        for c in 0..cases {
            if cases > 1 {
                builder = builder.case(if c == 0 { 0.3 } else { 0.7 });
            }
            for _ in 0..pick(3) {
                let target = places[pick(places.len() as u64) as usize];
                builder = builder.output_arc(target, 1);
            }
            if pick(3) == 0 {
                let target = places[pick(places.len() as u64) as usize];
                let add = pick(2) == 0;
                builder = builder.output_gate(move |m: &mut Marking| {
                    if add {
                        m.add_tokens(target, 1);
                    } else {
                        m.remove_tokens(target, m.tokens(target).min(1));
                    }
                });
            }
        }
        builder.build().unwrap();
    }

    let model = b.build().unwrap();
    let first = model.activity("a0").unwrap();
    let p0 = places[0];
    let rewards = vec![
        RewardSpec::time_averaged_rate("mass", |m: &Marking| m.total_tokens() as f64),
        RewardSpec::accumulated_rate("p0_tokens", move |m: &Marking| m.tokens(p0) as f64),
        RewardSpec::instant_of_time("final_mass", |m: &Marking| m.total_tokens() as f64),
        RewardSpec::impulse_total("a0_firings", first, 1.0),
        RewardSpec::impulse_per_hour("a0_rate", first, 2.5),
    ];
    (model, rewards)
}

// The acceptance property of the event-calendar engine: over random small
// SANs, rewards, event counts, end times, and full traces are bit-identical
// to the reference kernel — including the RNG draw sequence, since any
// divergence would desynchronise the trace.
proptest! {
    #[test]
    fn calendar_matches_reference_on_random_sans(
        structure in any::<u64>(),
        seed in any::<u64>(),
        horizon in 20.0..80.0_f64,
        warm in 0..3u32,
    ) {
        let (model, rewards) = random_model(structure);
        let warmup = f64::from(warm) * horizon / 8.0;
        assert_engines_agree(&model, &rewards, horizon, warmup, seed);
    }
}
