//! Cross-validation of the statically assembled sparse generator against
//! the dense CTMC solver, closed forms, and simulation: the acceptance
//! oracle for the reachability/admissibility tier.

use sanet::ctmc::Ctmc;
use sanet::rare::{failover_pair, failover_pair_hitting_oracle};
use sanet::reward::RewardSpec;
use sanet::{beowulf, Experiment};

/// Rebuilds an assembled sparse chain as a dense [`Ctmc`] so the two
/// solver paths can be compared state by state.
fn densify(assembly: &sanet::GeneratorAssembly) -> Ctmc {
    let mut dense = Ctmc::new(assembly.states.len()).expect("non-empty state space");
    for (from, to, rate) in assembly.ctmc.transitions() {
        dense.add_transition(from, to, rate).expect("valid assembled rate");
    }
    dense
}

#[test]
fn failover_pair_is_analytic_and_matches_the_dense_solver() {
    let pair = failover_pair(0.05, 0.5).unwrap();
    let report = pair.model.analyze();
    assert!(report.complete());
    assert!(report.all_exponential(), "{:?}", report.timing_offenders());
    // The unlatched markings are transient (the latch is a one-way door),
    // the three latched markings form the single recurrent class.
    assert_eq!(report.terminal_classes(), Some(1));
    assert_eq!(report.num_vanishing(), 1);
    assert!(report.admissibility().is_analytic(), "{:?}", report.admissibility());

    let assembly = report.assemble_generator().unwrap();
    assert_eq!(assembly.states.len(), 5, "5 tangible markings");
    let sparse_pi = assembly.ctmc.steady_state().unwrap();
    let dense_pi = densify(&assembly).steady_state().unwrap();
    for (s, d) in sparse_pi.iter().zip(&dense_pi) {
        assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
    }

    // Birth-death closed form over the latched class (working = 2, 1, 0
    // members; failure rate n·λ, repair rate μ): π(n) ∝ (2λ/μ)^k terms.
    let (lambda, mu) = (0.05, 0.5);
    let r = lambda / mu;
    let z = 1.0 + 2.0 * r + 2.0 * r * r;
    // Place order: working, failed, armed, latched.
    let latched2 = assembly.state_index(&[2, 0, 0, 1]).unwrap();
    let latched1 = assembly.state_index(&[1, 1, 0, 1]).unwrap();
    let latched0 = assembly.state_index(&[0, 2, 0, 1]).unwrap();
    assert!((sparse_pi[latched2] - 1.0 / z).abs() < 1e-10);
    assert!((sparse_pi[latched1] - 2.0 * r / z).abs() < 1e-10);
    assert!((sparse_pi[latched0] - 2.0 * r * r / z).abs() < 1e-10);
    // Transient (unlatched) markings carry no steady-state mass.
    let unlatched = assembly.state_index(&[2, 0, 1, 0]).unwrap();
    assert!(sparse_pi[unlatched].abs() < 1e-10);
}

#[test]
fn sparse_transient_matches_the_hitting_oracle_and_simulation() {
    let (lambda, mu, horizon) = (0.05, 0.5, 40.0);
    let pair = failover_pair(lambda, mu).unwrap();
    let assembly = pair.model.analyze().assemble_generator().unwrap();

    // The initial marking (both up, armed) is tangible.
    let initial = assembly.state_index(&[2, 0, 1, 0]).unwrap();
    assert_eq!(assembly.initial, vec![(initial, 1.0)]);

    // P(hit by horizon) = transient mass over the latched markings; the
    // 3-state lumped oracle agrees because latching is irreversible.
    let pi_t = assembly.ctmc.transient(initial, horizon).unwrap();
    let hit: f64 = assembly
        .states
        .iter()
        .enumerate()
        .filter(|(_, tokens)| tokens[3] > 0)
        .map(|(i, _)| pi_t[i])
        .sum();
    let oracle = failover_pair_hitting_oracle(lambda, mu, horizon).unwrap();
    assert!((hit - oracle).abs() < 1e-10, "assembled {hit} vs lumped oracle {oracle}");

    // And simulation of the SAN lands within its 95 % interval of the
    // statically computed probability.
    let mut experiment = Experiment::new(pair.model.clone(), horizon);
    experiment.add_reward(pair.hit_reward());
    let summary = experiment.run(4_000, 11).unwrap();
    let estimate = summary.reward("hit").unwrap();
    assert!(
        (estimate.interval.point - hit).abs() <= estimate.interval.half_width,
        "simulated {} ± {} vs analytic {hit}",
        estimate.interval.point,
        estimate.interval.half_width
    );
}

#[test]
fn beowulf_is_analytic_and_sparse_matches_dense_and_simulation() {
    // A small cluster keeps the state space tiny and the simulation fast.
    let config = beowulf::BeowulfConfig {
        workers: 3,
        head_mtbf_hours: 400.0,
        head_repair_hours: 8.0,
        worker_mtbf_hours: 200.0,
        worker_repair_hours: 12.0,
        repair_crews: 1,
    };
    let built = beowulf::build_beowulf_model(&config).unwrap();
    let report = built.model.analyze();
    assert!(report.complete());
    assert!(report.all_exponential(), "{:?}", report.timing_offenders());
    assert!(report.is_ergodic());
    assert!(report.admissibility().is_analytic(), "{:?}", report.admissibility());
    assert!(report.to_lint_report().deny(sanet::Severity::Warning).is_ok());

    let assembly = report.assemble_generator().unwrap();
    let sparse_pi = assembly.ctmc.steady_state().unwrap();
    let dense_pi = densify(&assembly).steady_state().unwrap();
    for (s, d) in sparse_pi.iter().zip(&dense_pi) {
        assert!((s - d).abs() < 1e-10, "sparse {s} vs dense {d}");
    }

    // Steady-state head availability from the assembled chain versus the
    // long-run time-averaged estimate from simulation, within its 95 % CI.
    let head_place = built.head_up;
    let analytic_head_up: f64 = assembly
        .states
        .iter()
        .enumerate()
        .filter(|(_, tokens)| tokens[head_place.index()] > 0)
        .map(|(i, _)| sparse_pi[i])
        .sum();
    let mut experiment = Experiment::new(built.model.clone(), 50_000.0);
    experiment.add_reward(RewardSpec::time_averaged_rate("head_up", move |m| {
        if m.tokens(head_place) > 0 {
            1.0
        } else {
            0.0
        }
    }));
    let summary = experiment.run(96, 7).unwrap();
    let estimate = summary.reward("head_up").unwrap();
    assert!(
        (estimate.interval.point - analytic_head_up).abs() <= estimate.interval.half_width,
        "simulated {} ± {} vs analytic {analytic_head_up}",
        estimate.interval.point,
        estimate.interval.half_width
    );
}
