//! Property tests of the static linter over randomly generated SANs.
//!
//! Two properties pin the linter from both sides:
//!
//! * **No false alarms** — a randomly generated *valid* model (every place
//!   referenced, every gate and marking-dependent timing with its reads
//!   declared truthfully, arcs demanding one token from populated places)
//!   lints clean at deny level Warning, whatever shape the generator drew.
//! * **No misses** — seeding one mutation class into such a model (an
//!   undeclared gate read, an undeclared timing read, a dangling reward
//!   target, a dead activity) is flagged with exactly the right `SAN0xx`
//!   code, again whatever the surrounding structure.
//!
//! Together with the fixed-model mutation suite in `tests/lint_mutations.rs`
//! this makes the linter's verdicts a property of the *bug class*, not of
//! one hand-picked example.

use proptest::prelude::*;

use probdist::{Dist, Exponential, SimRng};
use sanet::lint::{codes, LintConfig, Severity};
use sanet::reward::RewardSpec;
use sanet::{ActivityId, Marking, Model, ModelBuilder, PlaceId};

/// One seeded bug class, appended to an otherwise sound random model.
#[derive(Clone, Copy, PartialEq)]
enum Mutation {
    None,
    /// An activity whose gate reads a place its declaration omits.
    UndeclaredGateRead,
    /// An activity whose timing reads a place its declaration omits.
    UndeclaredTimingRead,
    /// An activity whose gate no reachable (or fuzzed) marking satisfies.
    DeadActivity,
}

/// Generates a random *sound* model: 2–5 places (all initially populated),
/// 2–5 timed activities with truthfully declared gate and timing reads,
/// distinct unit input arcs, random output arcs and gates — then appends
/// the requested mutation as one extra activity named `mutant`.
fn random_model(structure: u64, mutation: Mutation) -> (Model, Vec<RewardSpec>) {
    let mut g = SimRng::seed_from_u64(structure);
    let mut pick = |n: u64| -> u64 { g.next_u64() % n };

    let mut b = ModelBuilder::new("random-lint");
    let num_places = 2 + pick(4) as usize;
    let places: Vec<PlaceId> =
        (0..num_places).map(|i| b.add_place(&format!("p{i}"), 1 + pick(3)).unwrap()).collect();

    let num_acts = 2 + pick(4) as usize;
    for a in 0..num_acts {
        let name = format!("a{a}");
        let mut builder = if pick(2) == 0 {
            let watched = places[pick(places.len() as u64) as usize];
            b.timed_activity_fn(&name, move |m: &Marking| {
                let n = m.tokens(watched).max(1) as f64;
                Dist::Exponential(Exponential::new(0.1 * n).unwrap())
            })
            .unwrap()
            .timing_reads(&[watched])
        } else {
            b.timed_activity(&name, Exponential::from_mean(1.0 + pick(8) as f64).unwrap()).unwrap()
        };

        // Distinct unit input arcs (duplicates would be a real SAN012).
        let mut arc_places: Vec<PlaceId> =
            (0..=pick(2)).map(|_| places[pick(places.len() as u64) as usize]).collect();
        arc_places.sort_unstable();
        arc_places.dedup();
        for place in &arc_places {
            builder = builder.input_arc(*place, 1);
        }

        if pick(2) == 0 {
            // A satisfiable gate (threshold 0 or 1 against places fuzzed up
            // to ≥ 1) with its read declared truthfully.
            let watched = places[pick(places.len() as u64) as usize];
            let threshold = pick(2);
            builder = builder
                .enabling_predicate(move |m: &Marking| m.tokens(watched) >= threshold)
                .enabling_reads(&[watched]);
        }

        for _ in 0..=pick(2) {
            builder = builder.output_arc(places[pick(places.len() as u64) as usize], 1);
        }
        if pick(3) == 0 {
            let target = places[pick(places.len() as u64) as usize];
            builder = builder.output_gate(move |m: &mut Marking| m.add_tokens(target, 1));
        }
        builder.build().unwrap();
    }

    let read = places[pick(places.len() as u64) as usize];
    let declared = places[pick(places.len() as u64) as usize];
    match mutation {
        Mutation::None => {}
        Mutation::UndeclaredGateRead => {
            let mut builder = b
                .timed_activity("mutant", Exponential::from_mean(5.0).unwrap())
                .unwrap()
                .enabling_predicate(move |m: &Marking| m.tokens(read) > 0);
            // Declare *something* (possibly even another place) — the bug
            // is the omission of `read`, not the absence of a declaration.
            if declared != read {
                builder = builder.enabling_reads(&[declared]);
            } else {
                builder = builder.enabling_reads(&[]);
            }
            builder.build().unwrap();
        }
        Mutation::UndeclaredTimingRead => {
            // A self-loop keeps the mutant well-formed (the builder
            // rejects arc-less activities) and enabled at the initial
            // marking, so the timing function is actually probed.
            let mut builder = b
                .timed_activity_fn("mutant", move |m: &Marking| {
                    let n = m.tokens(read).max(1) as f64;
                    Dist::Exponential(Exponential::new(0.1 * n).unwrap())
                })
                .unwrap()
                .input_arc(read, 1)
                .output_arc(read, 1);
            if declared != read {
                builder = builder.timing_reads(&[declared]);
            } else {
                builder = builder.timing_reads(&[]);
            }
            builder.build().unwrap();
        }
        Mutation::DeadActivity => {
            b.timed_activity("mutant", Exponential::from_mean(5.0).unwrap())
                .unwrap()
                .input_arc(read, 1)
                .enabling_predicate(move |m: &Marking| m.tokens(read) >= 1_000_000)
                .enabling_reads(&[read])
                .build()
                .unwrap();
        }
    }

    let model = b.build().unwrap();
    // A rate reward over the total mass touches every place, so generated
    // places the arc draw happened to skip are still connected (isolated
    // places would be a *generator* artefact, not a model bug).
    let rewards =
        vec![RewardSpec::time_averaged_rate("mass", |m: &Marking| m.total_tokens() as f64)];
    (model, rewards)
}

fn lint(structure: u64, mutation: Mutation) -> sanet::LintReport {
    let (model, rewards) = random_model(structure, mutation);
    model.lint_with(&LintConfig::default(), &rewards)
}

/// An activity id that is out of range for any model the generator builds
/// (they have at most 10 activities): the last id of a 16-activity model.
fn out_of_range_activity() -> ActivityId {
    let mut b = ModelBuilder::new("big");
    let p = b.add_place("p", 1).unwrap();
    let mut last = None;
    for i in 0..16 {
        let id = b
            .timed_activity(&format!("a{i}"), Exponential::from_mean(1.0).unwrap())
            .unwrap()
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        last = Some(id);
    }
    b.build().unwrap();
    last.unwrap()
}

proptest! {
    #[test]
    fn random_valid_sans_lint_clean(structure in any::<u64>()) {
        let report = lint(structure, Mutation::None);
        if let Err(e) = report.deny(Severity::Warning) {
            panic!("sound random model (structure {structure}) must lint clean:\n{e}");
        }
    }

    #[test]
    fn undeclared_gate_reads_are_flagged_as_san001(structure in any::<u64>()) {
        let report = lint(structure, Mutation::UndeclaredGateRead);
        prop_assert!(report.has_code(codes::UNDECLARED_ENABLING_READ), "{report}");
        prop_assert!(report.deny(Severity::Error).is_err());
    }

    #[test]
    fn undeclared_timing_reads_are_flagged_as_san002(structure in any::<u64>()) {
        let report = lint(structure, Mutation::UndeclaredTimingRead);
        prop_assert!(report.has_code(codes::UNDECLARED_TIMING_READ), "{report}");
        prop_assert!(report.deny(Severity::Error).is_err());
    }

    #[test]
    fn dead_activities_are_flagged_as_san010(structure in any::<u64>()) {
        let report = lint(structure, Mutation::DeadActivity);
        let dead: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| d.code() == codes::DEAD_ACTIVITY)
            .collect();
        prop_assert!(
            dead.iter().any(|d| d.element().contains("mutant")),
            "expected a SAN010 naming `mutant`: {report}"
        );
    }

    #[test]
    fn dangling_reward_targets_are_flagged_as_san020(structure in any::<u64>()) {
        let (model, _) = random_model(structure, Mutation::None);
        let rewards = vec![RewardSpec::impulse_total("dangling", out_of_range_activity(), 1.0)];
        let report = model.lint_with(&LintConfig::default(), &rewards);
        prop_assert!(report.has_code(codes::UNKNOWN_REWARD_TARGET), "{report}");
        prop_assert!(report.deny(Severity::Error).is_err());
    }
}
