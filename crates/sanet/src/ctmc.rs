//! Continuous-time Markov chain (CTMC) solver used as an analytic
//! cross-check of the simulation engine.
//!
//! Möbius can solve small models numerically instead of simulating them;
//! this module provides the same capability for the building blocks of the
//! cluster model whose state spaces are small (a fail-over pair, a
//! k-out-of-n redundancy group): build the generator matrix, solve for the
//! steady-state distribution, and evaluate availability-style rewards
//! exactly. The tests in this crate and the integration tests of the
//! workspace compare these exact values against the discrete-event
//! estimates.

use crate::SanError;

/// A continuous-time Markov chain over states `0..n`, defined by its
/// transition rates.
///
/// # Example
///
/// ```
/// use sanet::ctmc::Ctmc;
///
/// // A repairable unit: state 0 = up, state 1 = down.
/// let mut chain = Ctmc::new(2).unwrap();
/// chain.add_transition(0, 1, 1.0 / 1000.0).unwrap(); // failure
/// chain.add_transition(1, 0, 1.0 / 10.0).unwrap();   // repair
/// let pi = chain.steady_state().unwrap();
/// let availability = pi[0];
/// assert!((availability - 1000.0 / 1010.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    states: usize,
    /// Dense generator matrix `Q` in row-major order; `rate[i][j]` is the
    /// transition rate from state `i` to state `j` (diagonal filled in at
    /// solve time).
    rates: Vec<Vec<f64>>,
}

impl Ctmc {
    /// Creates a chain with `states` states and no transitions.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `states` is zero.
    pub fn new(states: usize) -> Result<Self, SanError> {
        if states == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "a CTMC needs at least one state".into(),
            });
        }
        Ok(Ctmc { states, rates: vec![vec![0.0; states]; states] })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Adds (accumulates) a transition rate from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if either state is out of range and
    /// [`SanError::InvalidExperiment`] if the rate is not finite and
    /// positive or the transition is a self-loop.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) -> Result<(), SanError> {
        if from >= self.states || to >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {from}->{to}") });
        }
        if from == to {
            return Err(SanError::InvalidExperiment {
                reason: "self-loops are not allowed in a CTMC".into(),
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transition rate must be positive, got {rate}"),
            });
        }
        self.rates[from][to] += rate;
        Ok(())
    }

    /// Solves the steady-state (stationary) distribution `π` with
    /// `π Q = 0`, `Σ π = 1`, by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if the chain has no
    /// transitions at all or the linear system is singular beyond the usual
    /// rank-1 deficiency (e.g. the chain is not irreducible enough to have a
    /// unique stationary distribution).
    // Index-style loops mirror the Qᵀπ = 0 linear-algebra notation.
    #[allow(clippy::needless_range_loop)]
    pub fn steady_state(&self) -> Result<Vec<f64>, SanError> {
        let n = self.states;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        if self.rates.iter().all(|row| row.iter().all(|&r| r == 0.0)) {
            return Err(SanError::InvalidExperiment { reason: "CTMC has no transitions".into() });
        }

        // Build the transposed generator Qᵀ π = 0 and replace the last
        // equation with the normalisation Σ π = 1.
        let mut a = vec![vec![0.0_f64; n + 1]; n];
        for i in 0..n {
            let diagonal: f64 = self.rates[i].iter().sum();
            for j in 0..n {
                // Qᵀ[j][i] = Q[i][j]
                if i == j {
                    a[j][i] -= diagonal;
                } else {
                    a[j][i] += self.rates[i][j];
                }
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).expect("finite"))
                .expect("non-empty range");
            if a[pivot_row][col].abs() < 1e-14 {
                return Err(SanError::InvalidExperiment {
                    reason: "CTMC generator is singular; the chain has no unique stationary distribution".into(),
                });
            }
            a.swap(col, pivot_row);
            let pivot = a[col][col];
            for j in col..=n {
                a[col][j] /= pivot;
            }
            for row in 0..n {
                if row != col && a[row][col].abs() > 0.0 {
                    let factor = a[row][col];
                    for j in col..=n {
                        a[row][j] -= factor * a[col][j];
                    }
                }
            }
        }

        let mut pi: Vec<f64> = (0..n).map(|i| a[i][n].max(0.0)).collect();
        let total: f64 = pi.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: "steady-state solve produced a degenerate distribution".into(),
            });
        }
        for p in &mut pi {
            *p /= total;
        }
        Ok(pi)
    }

    /// Expected steady-state value of a reward function over states.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::steady_state`].
    pub fn steady_state_reward(&self, reward: impl Fn(usize) -> f64) -> Result<f64, SanError> {
        Ok(self.steady_state()?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }
}

/// Builds the CTMC of a k-out-of-n repairable redundancy group: `n` units
/// each failing at `failure_rate`, a single repair facility restoring one
/// unit at a time at `repair_rate`, and the system considered *up* while at
/// least `k` units work. State `i` = number of failed units.
///
/// Returns the chain and the index of the first *down* state (`n - k + 1`).
///
/// # Errors
///
/// Returns [`SanError::InvalidExperiment`] for invalid `k`/`n` or
/// non-positive rates.
pub fn k_out_of_n_chain(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<(Ctmc, usize), SanError> {
    if n == 0 || k == 0 || k > n {
        return Err(SanError::InvalidExperiment {
            reason: format!("k-out-of-n requires 1 <= k <= n, got k={k}, n={n}"),
        });
    }
    if failure_rate <= 0.0 || repair_rate <= 0.0 {
        return Err(SanError::InvalidExperiment { reason: "rates must be positive".into() });
    }
    let mut chain = Ctmc::new(n + 1)?;
    for failed in 0..n {
        let working = n - failed;
        chain.add_transition(failed, failed + 1, working as f64 * failure_rate)?;
        chain.add_transition(failed + 1, failed, repair_rate)?;
    }
    Ok((chain, n - k + 1))
}

/// Exact steady-state availability of a k-out-of-n repairable group.
///
/// # Errors
///
/// Propagates errors from [`k_out_of_n_chain`] and the steady-state solve.
pub fn k_out_of_n_availability(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<f64, SanError> {
    let (chain, first_down) = k_out_of_n_chain(n, k, failure_rate, repair_rate)?;
    chain.steady_state_reward(|state| if state < first_down { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::{Experiment, ModelBuilder};
    use probdist::Exponential;

    #[test]
    fn construction_and_validation() {
        assert!(Ctmc::new(0).is_err());
        let mut c = Ctmc::new(3).unwrap();
        assert_eq!(c.states(), 3);
        assert!(c.add_transition(0, 0, 1.0).is_err());
        assert!(c.add_transition(0, 5, 1.0).is_err());
        assert!(c.add_transition(0, 1, 0.0).is_err());
        assert!(c.add_transition(0, 1, f64::NAN).is_err());
        assert!(c.add_transition(0, 1, 2.0).is_ok());
        // No transitions at all -> error.
        assert!(Ctmc::new(2).unwrap().steady_state().is_err());
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let c = Ctmc::new(1).unwrap();
        assert_eq!(c.steady_state().unwrap(), vec![1.0]);
    }

    #[test]
    fn two_state_availability_matches_closed_form() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 1.0 / 500.0).unwrap();
        c.add_transition(1, 0, 1.0 / 20.0).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 500.0 / 520.0).abs() < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let availability = c.steady_state_reward(|s| if s == 0 { 1.0 } else { 0.0 }).unwrap();
        assert!((availability - pi[0]).abs() < 1e-15);
    }

    #[test]
    fn birth_death_chain_matches_erlang_formula() {
        // M/M/1-style chain with 3 states and distinct rates; compare with
        // the balance-equation solution computed by hand.
        let mut c = Ctmc::new(3).unwrap();
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(1, 2, 1.0).unwrap();
        c.add_transition(1, 0, 3.0).unwrap();
        c.add_transition(2, 1, 4.0).unwrap();
        let pi = c.steady_state().unwrap();
        // Balance: pi1 = pi0 * 2/3, pi2 = pi1 * 1/4.
        let p0 = 1.0 / (1.0 + 2.0 / 3.0 + 2.0 / 12.0);
        assert!((pi[0] - p0).abs() < 1e-12);
        assert!((pi[1] - p0 * 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[2] - p0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn k_out_of_n_validation_and_limits() {
        assert!(k_out_of_n_chain(0, 1, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 0, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 4, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 2, -0.1, 1.0).is_err());
        // A 1-out-of-1 group is the simple repairable unit.
        let a = k_out_of_n_availability(1, 1, 1.0 / 100.0, 1.0 / 10.0).unwrap();
        assert!((a - 100.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn more_redundancy_gives_higher_availability() {
        let lambda = 1.0 / 720.0;
        let mu = 1.0 / 24.0;
        let a_1of2 = k_out_of_n_availability(2, 1, lambda, mu).unwrap();
        let a_2of3 = k_out_of_n_availability(3, 2, lambda, mu).unwrap();
        let a_1of1 = k_out_of_n_availability(1, 1, lambda, mu).unwrap();
        assert!(a_1of2 > a_2of3, "a fail-over pair beats 2-out-of-3");
        assert!(a_2of3 > a_1of1);
        // With monthly failures and 24 h repairs a fail-over pair is down
        // only when both members are failed: about 0.2 % of the time.
        assert!(a_1of2 > 0.997 && a_1of2 < 0.9995, "availability {a_1of2}");
    }

    #[test]
    fn ctmc_matches_simulation_for_a_failover_pair() {
        // Exact availability of a 1-out-of-2 pair with exponential failure
        // and single-server exponential repair…
        let lambda = 1.0 / 300.0;
        let mu = 1.0 / 12.0;
        let exact = k_out_of_n_availability(2, 1, lambda, mu).unwrap();

        // …compared against the discrete-event engine estimating the same
        // system (marking-dependent aggregate failure rate, one repairer).
        let mut b = ModelBuilder::new("pair");
        let working = b.add_place("working", 2).unwrap();
        let failed = b.add_place("failed", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &crate::Marking| {
            let n = m.tokens(working).max(1) as f64;
            probdist::Dist::Exponential(Exponential::new(n * lambda).unwrap())
        })
        .unwrap()
        .input_arc(working, 1)
        .output_arc(failed, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", Exponential::new(mu).unwrap())
            .unwrap()
            .input_arc(failed, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let mut exp = Experiment::new(model, 100_000.0);
        exp.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
            if m.tokens(working) > 0 {
                1.0
            } else {
                0.0
            }
        }));
        let summary = exp.run(24, 5).unwrap();
        let simulated = summary.reward("avail").unwrap().interval.point;
        assert!((simulated - exact).abs() < 5e-4, "simulated {simulated} vs exact {exact}");
    }
}
