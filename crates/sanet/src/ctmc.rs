//! Continuous-time Markov chain (CTMC) solver used as an analytic
//! cross-check of the simulation engine.
//!
//! Möbius can solve small models numerically instead of simulating them;
//! this module provides the same capability for the building blocks of the
//! cluster model whose state spaces are small (a fail-over pair, a
//! k-out-of-n redundancy group): build the generator matrix, solve for the
//! steady-state distribution, and evaluate availability-style rewards
//! exactly. The tests in this crate and the integration tests of the
//! workspace compare these exact values against the discrete-event
//! estimates.

use crate::SanError;

/// A continuous-time Markov chain over states `0..n`, defined by its
/// transition rates.
///
/// # Example
///
/// ```
/// use sanet::ctmc::Ctmc;
///
/// // A repairable unit: state 0 = up, state 1 = down.
/// let mut chain = Ctmc::new(2).unwrap();
/// chain.add_transition(0, 1, 1.0 / 1000.0).unwrap(); // failure
/// chain.add_transition(1, 0, 1.0 / 10.0).unwrap();   // repair
/// let pi = chain.steady_state().unwrap();
/// let availability = pi[0];
/// assert!((availability - 1000.0 / 1010.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    states: usize,
    /// Dense generator matrix `Q` in row-major order; `rate[i][j]` is the
    /// transition rate from state `i` to state `j` (diagonal filled in at
    /// solve time).
    rates: Vec<Vec<f64>>,
}

impl Ctmc {
    /// Creates a chain with `states` states and no transitions.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `states` is zero.
    pub fn new(states: usize) -> Result<Self, SanError> {
        if states == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "a CTMC needs at least one state".into(),
            });
        }
        Ok(Ctmc { states, rates: vec![vec![0.0; states]; states] })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Adds (accumulates) a transition rate from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if either state is out of range and
    /// [`SanError::InvalidExperiment`] if the rate is not finite and
    /// positive or the transition is a self-loop.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) -> Result<(), SanError> {
        if from >= self.states || to >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {from}->{to}") });
        }
        if from == to {
            return Err(SanError::InvalidExperiment {
                reason: "self-loops are not allowed in a CTMC".into(),
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transition rate must be positive, got {rate}"),
            });
        }
        self.rates[from][to] += rate;
        Ok(())
    }

    /// Solves the steady-state (stationary) distribution `π` with
    /// `π Q = 0`, `Σ π = 1`, by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if the chain has no
    /// transitions at all or the linear system is singular beyond the usual
    /// rank-1 deficiency (e.g. the chain is not irreducible enough to have a
    /// unique stationary distribution).
    // Index-style loops mirror the Qᵀπ = 0 linear-algebra notation.
    #[allow(clippy::needless_range_loop)]
    pub fn steady_state(&self) -> Result<Vec<f64>, SanError> {
        let n = self.states;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        if self.rates.iter().all(|row| row.iter().all(|&r| r == 0.0)) {
            return Err(SanError::InvalidExperiment { reason: "CTMC has no transitions".into() });
        }

        // Build the transposed generator Qᵀ π = 0 and replace the last
        // equation with the normalisation Σ π = 1.
        let mut a = vec![vec![0.0_f64; n + 1]; n];
        for i in 0..n {
            let diagonal: f64 = self.rates[i].iter().sum();
            for j in 0..n {
                // Qᵀ[j][i] = Q[i][j]
                if i == j {
                    a[j][i] -= diagonal;
                } else {
                    a[j][i] += self.rates[i][j];
                }
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).expect("finite"))
                .expect("non-empty range");
            if a[pivot_row][col].abs() < 1e-14 {
                return Err(SanError::InvalidExperiment {
                    reason: "CTMC generator is singular; the chain has no unique stationary distribution".into(),
                });
            }
            a.swap(col, pivot_row);
            let pivot = a[col][col];
            for j in col..=n {
                a[col][j] /= pivot;
            }
            for row in 0..n {
                if row != col && a[row][col].abs() > 0.0 {
                    let factor = a[row][col];
                    for j in col..=n {
                        a[row][j] -= factor * a[col][j];
                    }
                }
            }
        }

        let mut pi: Vec<f64> = (0..n).map(|i| a[i][n].max(0.0)).collect();
        let total: f64 = pi.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: "steady-state solve produced a degenerate distribution".into(),
            });
        }
        for p in &mut pi {
            *p /= total;
        }
        Ok(pi)
    }

    /// Expected steady-state value of a reward function over states.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::steady_state`].
    pub fn steady_state_reward(&self, reward: impl Fn(usize) -> f64) -> Result<f64, SanError> {
        Ok(self.steady_state()?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }

    /// Solves the transient state distribution `π(t)` from a deterministic
    /// start state by uniformization (Jensen's method): with `Λ ≥ max_i
    /// |q_ii|` and the DTMC `P = I + Q/Λ`,
    /// `π(t) = Σ_k Poisson(Λt; k) · π(0) Pᵏ`, truncated once the Poisson
    /// tail mass drops below 10⁻¹². Large `Λt` horizons are split into
    /// steps so the Poisson weights never underflow.
    ///
    /// Absorbing states (rows of zero rates) are handled naturally, so the
    /// chain doubles as an analytic oracle for finite-horizon *hitting*
    /// probabilities — exactly the shape of a rare-event measure: make the
    /// failure state absorbing and read `π(t)` at its index.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if `initial` is out of range and
    /// [`SanError::InvalidExperiment`] for a negative or non-finite `t`.
    pub fn transient(&self, initial: usize, t: f64) -> Result<Vec<f64>, SanError> {
        if initial >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {initial}") });
        }
        if !(t.is_finite() && t >= 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transient horizon must be non-negative and finite, got {t}"),
            });
        }
        let mut pi = vec![0.0; self.states];
        pi[initial] = 1.0;
        if t == 0.0 {
            return Ok(pi);
        }

        // Uniformization rate: the largest exit rate, floored so a chain
        // with all-absorbing reachable states still steps.
        let rate =
            self.rates.iter().map(|row| row.iter().sum::<f64>()).fold(0.0_f64, f64::max).max(1e-12);

        // Split the horizon so each step's Poisson parameter stays small
        // enough that e^{-Λτ} does not underflow (Λτ ≤ 64 keeps the series
        // short and the weights comfortably inside f64 range).
        let steps = (rate * t / 64.0).ceil().max(1.0);
        let tau = t / steps;
        for _ in 0..steps as u64 {
            pi = self.uniformized_step(&pi, rate, tau);
        }
        Ok(pi)
    }

    /// Expected value of a reward function over the transient distribution
    /// at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::transient`].
    pub fn transient_reward(
        &self,
        initial: usize,
        t: f64,
        reward: impl Fn(usize) -> f64,
    ) -> Result<f64, SanError> {
        Ok(self.transient(initial, t)?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }

    /// One uniformized step of length `tau`: `π ← Σ_k w_k · π Pᵏ` with
    /// Poisson weights `w_k = e^{-Λτ}(Λτ)ᵏ/k!`, truncated at relative tail
    /// mass 10⁻¹².
    fn uniformized_step(&self, pi: &[f64], rate: f64, tau: f64) -> Vec<f64> {
        let n = self.states;
        let lambda_t = rate * tau;
        let mut weight = (-lambda_t).exp();
        let mut accumulated = weight;
        let mut term: Vec<f64> = pi.to_vec();
        let mut out: Vec<f64> = term.iter().map(|&p| p * weight).collect();
        let mut k = 0u64;
        // Hard cap well past the Poisson tail for Λτ ≤ 64 (mean + ~40σ).
        let max_terms = (lambda_t + 40.0 * lambda_t.sqrt() + 64.0) as u64;
        while accumulated < 1.0 - 1e-12 && k < max_terms {
            // term ← term · P with P = I + Q/Λ, i.e.
            // next[j] = term[j]·(1 − Σ_m q_jm/Λ) + Σ_i term[i]·q_ij/Λ.
            let mut next = vec![0.0; n];
            for (i, row) in self.rates.iter().enumerate() {
                let exit: f64 = row.iter().sum();
                next[i] += term[i] * (1.0 - exit / rate);
                if term[i] != 0.0 {
                    for (j, &q) in row.iter().enumerate() {
                        if q > 0.0 {
                            next[j] += term[i] * q / rate;
                        }
                    }
                }
            }
            term = next;
            k += 1;
            weight *= lambda_t / k as f64;
            accumulated += weight;
            for (o, &p) in out.iter_mut().zip(&term) {
                *o += weight * p;
            }
        }
        // Renormalise away the truncated tail so the distribution stays a
        // distribution.
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for o in &mut out {
                *o /= total;
            }
        }
        out
    }
}

/// Builds the CTMC of a k-out-of-n repairable redundancy group: `n` units
/// each failing at `failure_rate`, a single repair facility restoring one
/// unit at a time at `repair_rate`, and the system considered *up* while at
/// least `k` units work. State `i` = number of failed units.
///
/// Returns the chain and the index of the first *down* state (`n - k + 1`).
///
/// # Errors
///
/// Returns [`SanError::InvalidExperiment`] for invalid `k`/`n` or
/// non-positive rates.
pub fn k_out_of_n_chain(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<(Ctmc, usize), SanError> {
    if n == 0 || k == 0 || k > n {
        return Err(SanError::InvalidExperiment {
            reason: format!("k-out-of-n requires 1 <= k <= n, got k={k}, n={n}"),
        });
    }
    if failure_rate <= 0.0 || repair_rate <= 0.0 {
        return Err(SanError::InvalidExperiment { reason: "rates must be positive".into() });
    }
    let mut chain = Ctmc::new(n + 1)?;
    for failed in 0..n {
        let working = n - failed;
        chain.add_transition(failed, failed + 1, working as f64 * failure_rate)?;
        chain.add_transition(failed + 1, failed, repair_rate)?;
    }
    Ok((chain, n - k + 1))
}

/// Exact steady-state availability of a k-out-of-n repairable group.
///
/// # Errors
///
/// Propagates errors from [`k_out_of_n_chain`] and the steady-state solve.
pub fn k_out_of_n_availability(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<f64, SanError> {
    let (chain, first_down) = k_out_of_n_chain(n, k, failure_rate, repair_rate)?;
    chain.steady_state_reward(|state| if state < first_down { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::{Experiment, ModelBuilder};
    use probdist::Exponential;

    #[test]
    fn construction_and_validation() {
        assert!(Ctmc::new(0).is_err());
        let mut c = Ctmc::new(3).unwrap();
        assert_eq!(c.states(), 3);
        assert!(c.add_transition(0, 0, 1.0).is_err());
        assert!(c.add_transition(0, 5, 1.0).is_err());
        assert!(c.add_transition(0, 1, 0.0).is_err());
        assert!(c.add_transition(0, 1, f64::NAN).is_err());
        assert!(c.add_transition(0, 1, 2.0).is_ok());
        // No transitions at all -> error.
        assert!(Ctmc::new(2).unwrap().steady_state().is_err());
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let c = Ctmc::new(1).unwrap();
        assert_eq!(c.steady_state().unwrap(), vec![1.0]);
    }

    #[test]
    fn two_state_availability_matches_closed_form() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 1.0 / 500.0).unwrap();
        c.add_transition(1, 0, 1.0 / 20.0).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 500.0 / 520.0).abs() < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let availability = c.steady_state_reward(|s| if s == 0 { 1.0 } else { 0.0 }).unwrap();
        assert!((availability - pi[0]).abs() < 1e-15);
    }

    #[test]
    fn birth_death_chain_matches_erlang_formula() {
        // M/M/1-style chain with 3 states and distinct rates; compare with
        // the balance-equation solution computed by hand.
        let mut c = Ctmc::new(3).unwrap();
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(1, 2, 1.0).unwrap();
        c.add_transition(1, 0, 3.0).unwrap();
        c.add_transition(2, 1, 4.0).unwrap();
        let pi = c.steady_state().unwrap();
        // Balance: pi1 = pi0 * 2/3, pi2 = pi1 * 1/4.
        let p0 = 1.0 / (1.0 + 2.0 / 3.0 + 2.0 / 12.0);
        assert!((pi[0] - p0).abs() < 1e-12);
        assert!((pi[1] - p0 * 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[2] - p0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn k_out_of_n_validation_and_limits() {
        assert!(k_out_of_n_chain(0, 1, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 0, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 4, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 2, -0.1, 1.0).is_err());
        // A 1-out-of-1 group is the simple repairable unit.
        let a = k_out_of_n_availability(1, 1, 1.0 / 100.0, 1.0 / 10.0).unwrap();
        assert!((a - 100.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn more_redundancy_gives_higher_availability() {
        let lambda = 1.0 / 720.0;
        let mu = 1.0 / 24.0;
        let a_1of2 = k_out_of_n_availability(2, 1, lambda, mu).unwrap();
        let a_2of3 = k_out_of_n_availability(3, 2, lambda, mu).unwrap();
        let a_1of1 = k_out_of_n_availability(1, 1, lambda, mu).unwrap();
        assert!(a_1of2 > a_2of3, "a fail-over pair beats 2-out-of-3");
        assert!(a_2of3 > a_1of1);
        // With monthly failures and 24 h repairs a fail-over pair is down
        // only when both members are failed: about 0.2 % of the time.
        assert!(a_1of2 > 0.997 && a_1of2 < 0.9995, "availability {a_1of2}");
    }

    /// Transient solution of the 2-state repairable unit against the
    /// closed form `p_down(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})` from state
    /// "up".
    #[test]
    fn transient_matches_two_state_closed_form() {
        let lambda = 1.0 / 500.0;
        let mu = 1.0 / 20.0;
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, lambda).unwrap();
        c.add_transition(1, 0, mu).unwrap();
        for t in [0.0, 1.0, 10.0, 100.0, 1_000.0, 50_000.0] {
            let pi = c.transient(0, t).unwrap();
            let expected = lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
            assert!(
                (pi[1] - expected).abs() < 1e-10,
                "t={t}: transient {} vs closed form {expected}",
                pi[1]
            );
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // From the "down" state the complementary closed form applies.
        let pi = c.transient(1, 30.0).unwrap();
        let expected =
            lambda / (lambda + mu) + mu / (lambda + mu) * (-(lambda + mu) * 30.0_f64).exp();
        assert!((pi[1] - expected).abs() < 1e-10);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (chain, first_down) = k_out_of_n_chain(2, 1, 1.0 / 300.0, 1.0 / 12.0).unwrap();
        let pi_t = chain.transient(0, 1e6).unwrap();
        let pi_inf = chain.steady_state().unwrap();
        for (a, b) in pi_t.iter().zip(&pi_inf) {
            assert!((a - b).abs() < 1e-9, "transient {a} vs steady {b}");
        }
        assert_eq!(first_down, 2);
    }

    #[test]
    fn transient_handles_absorbing_states_as_hitting_probabilities() {
        // Fail-over pair with the both-down state absorbing: π₂(t) is the
        // probability of having *hit* total failure by t — the analytic
        // oracle the importance-sampling cross-validation uses.
        let lambda = 1e-3;
        let mu = 1.0;
        let mut c = Ctmc::new(3).unwrap();
        c.add_transition(0, 1, 2.0 * lambda).unwrap();
        c.add_transition(1, 0, mu).unwrap();
        c.add_transition(1, 2, lambda).unwrap(); // no way back: absorbing
        let p10 = c.transient(0, 10.0).unwrap()[2];
        let p100 = c.transient(0, 100.0).unwrap()[2];
        assert!(p10 > 0.0 && p100 > p10, "hitting probability grows: {p10} vs {p100}");
        // Short-horizon first-order magnitude: ~2λ²t²·μ/2-ish is tiny; the
        // quasi-stationary hitting rate is 2λ²/μ per hour.
        let approx = 2.0 * lambda * lambda / mu * 100.0;
        assert!(
            (p100 - approx).abs() / approx < 0.15,
            "p_hit(100) {p100} vs quasi-stationary {approx}"
        );
        // t = 0 is the start distribution.
        assert_eq!(c.transient(0, 0.0).unwrap(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn transient_validates_inputs() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 1.0).unwrap();
        assert!(c.transient(5, 1.0).is_err());
        assert!(c.transient(0, -1.0).is_err());
        assert!(c.transient(0, f64::NAN).is_err());
        assert!(c.transient(0, f64::INFINITY).is_err());
        // A transition-free chain stays where it started.
        let idle = Ctmc::new(2).unwrap();
        assert_eq!(idle.transient(1, 100.0).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn transient_reward_weights_states() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 0.01).unwrap();
        c.add_transition(1, 0, 0.5).unwrap();
        let availability =
            c.transient_reward(0, 200.0, |s| if s == 0 { 1.0 } else { 0.0 }).unwrap();
        let pi = c.transient(0, 200.0).unwrap();
        assert!((availability - pi[0]).abs() < 1e-15);
    }

    #[test]
    fn ctmc_matches_simulation_for_a_failover_pair() {
        // Exact availability of a 1-out-of-2 pair with exponential failure
        // and single-server exponential repair…
        let lambda = 1.0 / 300.0;
        let mu = 1.0 / 12.0;
        let exact = k_out_of_n_availability(2, 1, lambda, mu).unwrap();

        // …compared against the discrete-event engine estimating the same
        // system (marking-dependent aggregate failure rate, one repairer).
        let mut b = ModelBuilder::new("pair");
        let working = b.add_place("working", 2).unwrap();
        let failed = b.add_place("failed", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &crate::Marking| {
            let n = m.tokens(working).max(1) as f64;
            probdist::Dist::Exponential(Exponential::new(n * lambda).unwrap())
        })
        .unwrap()
        .input_arc(working, 1)
        .output_arc(failed, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", Exponential::new(mu).unwrap())
            .unwrap()
            .input_arc(failed, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let mut exp = Experiment::new(model, 100_000.0);
        exp.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
            if m.tokens(working) > 0 {
                1.0
            } else {
                0.0
            }
        }));
        let summary = exp.run(24, 5).unwrap();
        let simulated = summary.reward("avail").unwrap().interval.point;
        assert!((simulated - exact).abs() < 5e-4, "simulated {simulated} vs exact {exact}");
    }
}
