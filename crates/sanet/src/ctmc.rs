//! Continuous-time Markov chain (CTMC) solver used as an analytic
//! cross-check of the simulation engine.
//!
//! Möbius can solve small models numerically instead of simulating them;
//! this module provides the same capability for the building blocks of the
//! cluster model whose state spaces are small (a fail-over pair, a
//! k-out-of-n redundancy group): build the generator matrix, solve for the
//! steady-state distribution, and evaluate availability-style rewards
//! exactly. The tests in this crate and the integration tests of the
//! workspace compare these exact values against the discrete-event
//! estimates.

use crate::SanError;

/// A continuous-time Markov chain over states `0..n`, defined by its
/// transition rates.
///
/// # Example
///
/// ```
/// use sanet::ctmc::Ctmc;
///
/// // A repairable unit: state 0 = up, state 1 = down.
/// let mut chain = Ctmc::new(2).unwrap();
/// chain.add_transition(0, 1, 1.0 / 1000.0).unwrap(); // failure
/// chain.add_transition(1, 0, 1.0 / 10.0).unwrap();   // repair
/// let pi = chain.steady_state().unwrap();
/// let availability = pi[0];
/// assert!((availability - 1000.0 / 1010.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmc {
    states: usize,
    /// Dense generator matrix `Q` in row-major order; `rate[i][j]` is the
    /// transition rate from state `i` to state `j` (diagonal filled in at
    /// solve time).
    rates: Vec<Vec<f64>>,
}

impl Ctmc {
    /// Creates a chain with `states` states and no transitions.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `states` is zero.
    pub fn new(states: usize) -> Result<Self, SanError> {
        if states == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "a CTMC needs at least one state".into(),
            });
        }
        Ok(Ctmc { states, rates: vec![vec![0.0; states]; states] })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Adds (accumulates) a transition rate from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if either state is out of range and
    /// [`SanError::InvalidExperiment`] if the rate is not finite and
    /// positive or the transition is a self-loop.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) -> Result<(), SanError> {
        if from >= self.states || to >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {from}->{to}") });
        }
        if from == to {
            return Err(SanError::InvalidExperiment {
                reason: "self-loops are not allowed in a CTMC".into(),
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transition rate must be positive, got {rate}"),
            });
        }
        self.rates[from][to] += rate;
        Ok(())
    }

    /// Iterates over the non-zero `(from, to, rate)` entries of `Q` in
    /// row-major order.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rates.iter().enumerate().flat_map(|(from, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &rate)| rate > 0.0)
                .map(move |(to, &rate)| (from, to, rate))
        })
    }

    /// Solves the steady-state (stationary) distribution `π` with
    /// `π Q = 0`, `Σ π = 1`, by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if the chain has no
    /// transitions at all or the linear system is singular beyond the usual
    /// rank-1 deficiency (e.g. the chain is not irreducible enough to have a
    /// unique stationary distribution).
    // Index-style loops mirror the Qᵀπ = 0 linear-algebra notation.
    #[allow(clippy::needless_range_loop)]
    pub fn steady_state(&self) -> Result<Vec<f64>, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanSolve);
        let n = self.states;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        if self.rates.iter().all(|row| row.iter().all(|&r| r == 0.0)) {
            return Err(SanError::InvalidExperiment { reason: "CTMC has no transitions".into() });
        }

        // Build the transposed generator Qᵀ π = 0 and replace the last
        // equation with the normalisation Σ π = 1.
        let mut a = vec![vec![0.0_f64; n + 1]; n];
        for i in 0..n {
            let diagonal: f64 = self.rates[i].iter().sum();
            for j in 0..n {
                // Qᵀ[j][i] = Q[i][j]
                if i == j {
                    a[j][i] -= diagonal;
                } else {
                    a[j][i] += self.rates[i][j];
                }
            }
        }
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;

        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            let pivot_row = (col..n)
                .max_by(|&r1, &r2| a[r1][col].abs().partial_cmp(&a[r2][col].abs()).expect("finite"))
                .expect("non-empty range");
            if a[pivot_row][col].abs() < 1e-14 {
                return Err(SanError::InvalidExperiment {
                    reason: "CTMC generator is singular; the chain has no unique stationary distribution".into(),
                });
            }
            a.swap(col, pivot_row);
            let pivot = a[col][col];
            for j in col..=n {
                a[col][j] /= pivot;
            }
            for row in 0..n {
                if row != col && a[row][col].abs() > 0.0 {
                    let factor = a[row][col];
                    for j in col..=n {
                        a[row][j] -= factor * a[col][j];
                    }
                }
            }
        }

        let mut pi: Vec<f64> = (0..n).map(|i| a[i][n].max(0.0)).collect();
        let total: f64 = pi.iter().sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: "steady-state solve produced a degenerate distribution".into(),
            });
        }
        for p in &mut pi {
            *p /= total;
        }
        Ok(pi)
    }

    /// Expected steady-state value of a reward function over states.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::steady_state`].
    pub fn steady_state_reward(&self, reward: impl Fn(usize) -> f64) -> Result<f64, SanError> {
        Ok(self.steady_state()?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }

    /// Solves the transient state distribution `π(t)` from a deterministic
    /// start state by uniformization (Jensen's method): with `Λ ≥ max_i
    /// |q_ii|` and the DTMC `P = I + Q/Λ`,
    /// `π(t) = Σ_k Poisson(Λt; k) · π(0) Pᵏ`, truncated once the Poisson
    /// tail mass drops below 10⁻¹². Large `Λt` horizons are split into
    /// steps so the Poisson weights never underflow.
    ///
    /// Absorbing states (rows of zero rates) are handled naturally, so the
    /// chain doubles as an analytic oracle for finite-horizon *hitting*
    /// probabilities — exactly the shape of a rare-event measure: make the
    /// failure state absorbing and read `π(t)` at its index.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if `initial` is out of range and
    /// [`SanError::InvalidExperiment`] for a negative or non-finite `t`.
    pub fn transient(&self, initial: usize, t: f64) -> Result<Vec<f64>, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanSolve);
        if initial >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {initial}") });
        }
        if !(t.is_finite() && t >= 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transient horizon must be non-negative and finite, got {t}"),
            });
        }
        let mut pi = vec![0.0; self.states];
        pi[initial] = 1.0;
        if t == 0.0 {
            return Ok(pi);
        }

        // Uniformization rate: the largest exit rate, floored so a chain
        // with all-absorbing reachable states still steps.
        let rate =
            self.rates.iter().map(|row| row.iter().sum::<f64>()).fold(0.0_f64, f64::max).max(1e-12);

        // Split the horizon so each step's Poisson parameter stays small
        // enough that e^{-Λτ} does not underflow (Λτ ≤ 64 keeps the series
        // short and the weights comfortably inside f64 range).
        let steps = (rate * t / 64.0).ceil().max(1.0);
        let tau = t / steps;
        for _ in 0..steps as u64 {
            pi = self.uniformized_step(&pi, rate, tau);
        }
        Ok(pi)
    }

    /// Expected value of a reward function over the transient distribution
    /// at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Ctmc::transient`].
    pub fn transient_reward(
        &self,
        initial: usize,
        t: f64,
        reward: impl Fn(usize) -> f64,
    ) -> Result<f64, SanError> {
        Ok(self.transient(initial, t)?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }

    /// One uniformized step of length `tau`: `π ← Σ_k w_k · π Pᵏ` with
    /// Poisson weights `w_k = e^{-Λτ}(Λτ)ᵏ/k!`, truncated at relative tail
    /// mass 10⁻¹².
    fn uniformized_step(&self, pi: &[f64], rate: f64, tau: f64) -> Vec<f64> {
        let n = self.states;
        let lambda_t = rate * tau;
        let mut weight = (-lambda_t).exp();
        let mut accumulated = weight;
        let mut term: Vec<f64> = pi.to_vec();
        let mut out: Vec<f64> = term.iter().map(|&p| p * weight).collect();
        let mut k = 0u64;
        // Hard cap well past the Poisson tail for Λτ ≤ 64 (mean + ~40σ).
        let max_terms = (lambda_t + 40.0 * lambda_t.sqrt() + 64.0) as u64;
        while accumulated < 1.0 - 1e-12 && k < max_terms {
            // term ← term · P with P = I + Q/Λ, i.e.
            // next[j] = term[j]·(1 − Σ_m q_jm/Λ) + Σ_i term[i]·q_ij/Λ.
            let mut next = vec![0.0; n];
            for (i, row) in self.rates.iter().enumerate() {
                let exit: f64 = row.iter().sum();
                next[i] += term[i] * (1.0 - exit / rate);
                if term[i] != 0.0 {
                    for (j, &q) in row.iter().enumerate() {
                        if q > 0.0 {
                            next[j] += term[i] * q / rate;
                        }
                    }
                }
            }
            term = next;
            k += 1;
            weight *= lambda_t / k as f64;
            accumulated += weight;
            for (o, &p) in out.iter_mut().zip(&term) {
                *o += weight * p;
            }
        }
        // Renormalise away the truncated tail so the distribution stays a
        // distribution.
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for o in &mut out {
                *o /= total;
            }
        }
        out
    }
}

/// A sparse continuous-time Markov chain: the same `steady_state` /
/// `transient` API as the dense [`Ctmc`], with the generator held as
/// `(from, to, rate)` triplets compiled to compressed-sparse-row form at
/// solve time.
///
/// Built for the statically assembled generators of
/// [`reach`](crate::reach): state spaces with thousands of markings where
/// a dense `n × n` matrix (and Gaussian elimination's `O(n³)`) would not
/// scale. The steady state is solved by power iteration on the
/// uniformized chain `P = I + Q/Λ` (with `Λ` strictly above the largest
/// exit rate, so every state keeps a positive self-probability and the
/// iteration cannot cycle); the transient solution is Jensen
/// uniformization on the sparse rows, mirroring [`Ctmc::transient`].
///
/// # Example
///
/// ```
/// use sanet::ctmc::SparseCtmc;
///
/// let mut chain = SparseCtmc::new(2).unwrap();
/// chain.add_transition(0, 1, 1.0 / 1000.0).unwrap();
/// chain.add_transition(1, 0, 1.0 / 10.0).unwrap();
/// let pi = chain.steady_state().unwrap();
/// assert!((pi[0] - 1000.0 / 1010.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCtmc {
    states: usize,
    /// Raw `(from, to, rate)` entries in insertion order; duplicates are
    /// aggregated when the CSR form is compiled.
    triplets: Vec<(usize, usize, f64)>,
}

/// Compiled compressed-sparse-row view of a [`SparseCtmc`] generator.
struct Csr {
    /// `row_ptr[i]..row_ptr[i + 1]` indexes state `i`'s entries.
    row_ptr: Vec<usize>,
    columns: Vec<usize>,
    rates: Vec<f64>,
    /// Total exit rate per state (the negated diagonal).
    exit: Vec<f64>,
}

impl Csr {
    fn row(&self, state: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let span = self.row_ptr[state]..self.row_ptr[state + 1];
        self.columns[span.clone()].iter().copied().zip(self.rates[span].iter().copied())
    }
}

impl SparseCtmc {
    /// Creates a chain with `states` states and no transitions.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `states` is zero.
    pub fn new(states: usize) -> Result<Self, SanError> {
        if states == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "a CTMC needs at least one state".into(),
            });
        }
        Ok(SparseCtmc { states, triplets: Vec::new() })
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of stored transition entries (before aggregation).
    pub fn num_transitions(&self) -> usize {
        self.triplets.len()
    }

    /// Adds (accumulates) a transition rate from `from` to `to`, with the
    /// same validation as the dense [`Ctmc::add_transition`]: both states
    /// in range, no self-loops, rate finite and positive — rejecting the
    /// inputs that would silently corrupt the diagonal at solve time.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if either state is out of range and
    /// [`SanError::InvalidExperiment`] for self-loops or rates that are
    /// not finite and positive.
    pub fn add_transition(&mut self, from: usize, to: usize, rate: f64) -> Result<(), SanError> {
        if from >= self.states || to >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {from}->{to}") });
        }
        if from == to {
            return Err(SanError::InvalidExperiment {
                reason: "self-loops are not allowed in a CTMC".into(),
            });
        }
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transition rate must be positive, got {rate}"),
            });
        }
        self.triplets.push((from, to, rate));
        Ok(())
    }

    /// The stored `(from, to, rate)` entries, in insertion order — lets
    /// tests and cross-checks rebuild a dense oracle with identical rates.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.triplets.iter().copied()
    }

    /// Compiles the triplets into CSR form, aggregating duplicate
    /// `(from, to)` pairs.
    fn csr(&self) -> Csr {
        let mut sorted = self.triplets.clone();
        sorted.sort_unstable_by_key(|&(from, to, _)| (from, to));
        let mut row_ptr = vec![0usize; self.states + 1];
        let mut columns = Vec::with_capacity(sorted.len());
        let mut rates: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut exit = vec![0.0; self.states];
        let mut last: Option<(usize, usize)> = None;
        for (from, to, rate) in sorted {
            exit[from] += rate;
            if last == Some((from, to)) {
                *rates.last_mut().expect("non-empty") += rate;
            } else {
                columns.push(to);
                rates.push(rate);
                last = Some((from, to));
            }
            row_ptr[from + 1] = columns.len();
        }
        // Rows with no entries inherit the running prefix.
        for i in 1..=self.states {
            row_ptr[i] = row_ptr[i].max(row_ptr[i - 1]);
        }
        Csr { row_ptr, columns, rates, exit }
    }

    /// Solves the steady-state distribution by power iteration on the
    /// uniformized DTMC `P = I + Q/Λ` with `Λ = 1.05 · max exit rate`,
    /// restricted to the chain's single terminal (recurrent) class.
    ///
    /// The stationary distribution puts no mass on transient states, so the
    /// solver first condenses the transition graph (Tarjan) and iterates
    /// only inside the terminal class. Restricting the iteration matters
    /// beyond efficiency: in rare-event chains the drain *into* the
    /// terminal class can be orders of magnitude slower than the mixing
    /// inside it, and iterating the full chain would converge at the drain
    /// rate instead. Transient states report exactly `0.0`. The strictly
    /// positive diagonal makes `P` aperiodic, so within the class the
    /// iteration converges to the unique stationary distribution.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if the chain has no
    /// transitions at all, has more than one terminal class (the stationary
    /// distribution is then not unique — assemble per-class chains
    /// instead), or the iteration fails to converge.
    pub fn steady_state(&self) -> Result<Vec<f64>, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanSolve);
        let n = self.states;
        if n == 1 {
            return Ok(vec![1.0]);
        }
        if self.triplets.is_empty() {
            return Err(SanError::InvalidExperiment { reason: "CTMC has no transitions".into() });
        }
        let csr = self.csr();
        let (component, count) = sparse_sccs(n, &csr);
        let mut terminal = vec![true; count];
        for state in 0..n {
            for (to, _) in csr.row(state) {
                if component[to] != component[state] {
                    terminal[component[state]] = false;
                }
            }
        }
        let classes: Vec<usize> =
            (0..count).filter(|&component_id| terminal[component_id]).collect();
        if classes.len() != 1 {
            return Err(SanError::InvalidExperiment {
                reason: format!(
                    "chain has {} terminal classes; the stationary distribution is not unique",
                    classes.len()
                ),
            });
        }
        let members: Vec<usize> = (0..n).filter(|&state| component[state] == classes[0]).collect();
        let mut pi = vec![0.0; n];
        if members.len() == 1 {
            // A single absorbing state carries all the mass exactly.
            pi[members[0]] = 1.0;
            return Ok(pi);
        }
        // A multi-state terminal class is strongly connected, so every
        // member has a positive exit rate and all its edges stay inside
        // the class: the global vectors below only ever touch members.
        let lambda = 1.05 * members.iter().map(|&state| csr.exit[state]).fold(0.0_f64, f64::max);
        for &state in &members {
            pi[state] = 1.0 / members.len() as f64;
        }
        let mut next = vec![0.0; n];
        // Convergence: successive-iterate delta below threshold. The
        // threshold sits well under the 1e-10 oracle-agreement target but
        // above f64 round-off for small chains.
        const TOLERANCE: f64 = 1e-15;
        const MAX_ITERATIONS: usize = 2_000_000;
        for _ in 0..MAX_ITERATIONS {
            for &state in &members {
                next[state] = pi[state] * (1.0 - csr.exit[state] / lambda);
            }
            for &state in &members {
                let mass = pi[state];
                if mass == 0.0 {
                    continue;
                }
                for (to, rate) in csr.row(state) {
                    next[to] += mass * rate / lambda;
                }
            }
            let total: f64 = members.iter().map(|&state| next[state]).sum();
            if !(total.is_finite() && total > 0.0) {
                return Err(SanError::InvalidExperiment {
                    reason: "steady-state power iteration produced a degenerate distribution"
                        .into(),
                });
            }
            for &state in &members {
                next[state] /= total;
            }
            let delta = members
                .iter()
                .map(|&state| (pi[state] - next[state]).abs())
                .fold(0.0_f64, f64::max);
            std::mem::swap(&mut pi, &mut next);
            if delta < TOLERANCE {
                return Ok(pi);
            }
        }
        Err(SanError::InvalidExperiment {
            reason: "steady-state power iteration did not converge".into(),
        })
    }

    /// Expected steady-state value of a reward function over states.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SparseCtmc::steady_state`].
    pub fn steady_state_reward(&self, reward: impl Fn(usize) -> f64) -> Result<f64, SanError> {
        Ok(self.steady_state()?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }

    /// Solves the transient distribution `π(t)` from a deterministic start
    /// state by uniformization on the sparse rows — the same Jensen scheme
    /// (horizon split at `Λτ ≤ 64`, Poisson tail `10⁻¹²`, renormalised) as
    /// the dense [`Ctmc::transient`].
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if `initial` is out of range and
    /// [`SanError::InvalidExperiment`] for a negative or non-finite `t`.
    pub fn transient(&self, initial: usize, t: f64) -> Result<Vec<f64>, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanSolve);
        if initial >= self.states {
            return Err(SanError::UnknownId { what: format!("CTMC state {initial}") });
        }
        if !(t.is_finite() && t >= 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("transient horizon must be non-negative and finite, got {t}"),
            });
        }
        let mut pi = vec![0.0; self.states];
        pi[initial] = 1.0;
        if t == 0.0 {
            return Ok(pi);
        }
        let csr = self.csr();
        let rate = csr.exit.iter().copied().fold(0.0_f64, f64::max).max(1e-12);
        let steps = (rate * t / 64.0).ceil().max(1.0);
        let tau = t / steps;
        for _ in 0..steps as u64 {
            pi = uniformized_sparse_step(&csr, &pi, rate, tau);
        }
        Ok(pi)
    }

    /// Expected value of a reward function over the transient distribution
    /// at time `t`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`SparseCtmc::transient`].
    pub fn transient_reward(
        &self,
        initial: usize,
        t: f64,
        reward: impl Fn(usize) -> f64,
    ) -> Result<f64, SanError> {
        Ok(self.transient(initial, t)?.iter().enumerate().map(|(s, &p)| p * reward(s)).sum())
    }
}

/// Strongly connected components of the CSR transition graph by iterative
/// Tarjan: returns one component id per state (ids in reverse topological
/// order of discovery) and the component count.
fn sparse_sccs(n: usize, csr: &Csr) -> (Vec<usize>, usize) {
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut component = vec![UNVISITED; n];
    let mut next_index = 0usize;
    let mut count = 0usize;
    // (state, next CSR edge offset) — an explicit DFS frame per state.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, csr.row_ptr[root]));
        while let Some(frame) = frames.last_mut() {
            let state = frame.0;
            if frame.1 < csr.row_ptr[state + 1] {
                let successor = csr.columns[frame.1];
                frame.1 += 1;
                if index[successor] == UNVISITED {
                    index[successor] = next_index;
                    low[successor] = next_index;
                    next_index += 1;
                    stack.push(successor);
                    on_stack[successor] = true;
                    frames.push((successor, csr.row_ptr[successor]));
                } else if on_stack[successor] {
                    low[state] = low[state].min(index[successor]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last_mut() {
                    low[parent.0] = low[parent.0].min(low[state]);
                }
                if low[state] == index[state] {
                    loop {
                        let member = stack.pop().expect("Tarjan stack underflow");
                        on_stack[member] = false;
                        component[member] = count;
                        if member == state {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    (component, count)
}

/// One uniformized step of length `tau` over the CSR rows: `π ← Σ_k w_k ·
/// π Pᵏ` with Poisson weights truncated at relative tail mass `10⁻¹²` —
/// the sparse twin of the dense `Ctmc::uniformized_step`.
fn uniformized_sparse_step(csr: &Csr, pi: &[f64], rate: f64, tau: f64) -> Vec<f64> {
    let n = pi.len();
    let lambda_t = rate * tau;
    let mut weight = (-lambda_t).exp();
    let mut accumulated = weight;
    let mut term: Vec<f64> = pi.to_vec();
    let mut out: Vec<f64> = term.iter().map(|&p| p * weight).collect();
    let mut k = 0u64;
    let max_terms = (lambda_t + 40.0 * lambda_t.sqrt() + 64.0) as u64;
    while accumulated < 1.0 - 1e-12 && k < max_terms {
        let mut next = vec![0.0; n];
        for (state, slot) in next.iter_mut().enumerate() {
            *slot = term[state] * (1.0 - csr.exit[state] / rate);
        }
        for (state, &mass) in term.iter().enumerate() {
            if mass == 0.0 {
                continue;
            }
            for (to, q) in csr.row(state) {
                next[to] += mass * q / rate;
            }
        }
        term = next;
        k += 1;
        weight *= lambda_t / k as f64;
        accumulated += weight;
        for (o, &p) in out.iter_mut().zip(&term) {
            *o += weight * p;
        }
    }
    let total: f64 = out.iter().sum();
    if total > 0.0 {
        for o in &mut out {
            *o /= total;
        }
    }
    out
}

/// Builds the CTMC of a k-out-of-n repairable redundancy group: `n` units
/// each failing at `failure_rate`, a single repair facility restoring one
/// unit at a time at `repair_rate`, and the system considered *up* while at
/// least `k` units work. State `i` = number of failed units.
///
/// Returns the chain and the index of the first *down* state (`n - k + 1`).
///
/// # Errors
///
/// Returns [`SanError::InvalidExperiment`] for invalid `k`/`n` or
/// non-positive rates.
pub fn k_out_of_n_chain(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<(Ctmc, usize), SanError> {
    if n == 0 || k == 0 || k > n {
        return Err(SanError::InvalidExperiment {
            reason: format!("k-out-of-n requires 1 <= k <= n, got k={k}, n={n}"),
        });
    }
    if failure_rate <= 0.0 || repair_rate <= 0.0 {
        return Err(SanError::InvalidExperiment { reason: "rates must be positive".into() });
    }
    let mut chain = Ctmc::new(n + 1)?;
    for failed in 0..n {
        let working = n - failed;
        chain.add_transition(failed, failed + 1, working as f64 * failure_rate)?;
        chain.add_transition(failed + 1, failed, repair_rate)?;
    }
    Ok((chain, n - k + 1))
}

/// Exact steady-state availability of a k-out-of-n repairable group.
///
/// # Errors
///
/// Propagates errors from [`k_out_of_n_chain`] and the steady-state solve.
pub fn k_out_of_n_availability(
    n: usize,
    k: usize,
    failure_rate: f64,
    repair_rate: f64,
) -> Result<f64, SanError> {
    let (chain, first_down) = k_out_of_n_chain(n, k, failure_rate, repair_rate)?;
    chain.steady_state_reward(|state| if state < first_down { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::{Experiment, ModelBuilder};
    use probdist::Exponential;

    #[test]
    fn construction_and_validation() {
        assert!(Ctmc::new(0).is_err());
        let mut c = Ctmc::new(3).unwrap();
        assert_eq!(c.states(), 3);
        assert!(c.add_transition(0, 0, 1.0).is_err());
        assert!(c.add_transition(0, 5, 1.0).is_err());
        assert!(c.add_transition(0, 1, 0.0).is_err());
        assert!(c.add_transition(0, 1, f64::NAN).is_err());
        assert!(c.add_transition(0, 1, f64::INFINITY).is_err());
        assert!(c.add_transition(0, 1, -0.5).is_err());
        assert!(c.add_transition(0, 1, 2.0).is_ok());
        // No transitions at all -> error.
        assert!(Ctmc::new(2).unwrap().steady_state().is_err());
    }

    #[test]
    fn sparse_construction_mirrors_dense_validation() {
        assert!(SparseCtmc::new(0).is_err());
        let mut c = SparseCtmc::new(3).unwrap();
        assert_eq!(c.states(), 3);
        assert!(c.add_transition(0, 0, 1.0).is_err());
        assert!(c.add_transition(0, 5, 1.0).is_err());
        assert!(c.add_transition(7, 1, 1.0).is_err());
        assert!(c.add_transition(0, 1, 0.0).is_err());
        assert!(c.add_transition(0, 1, f64::NAN).is_err());
        assert!(c.add_transition(0, 1, f64::INFINITY).is_err());
        assert!(c.add_transition(0, 1, -2.0).is_err());
        assert!(c.add_transition(0, 1, 2.0).is_ok());
        assert_eq!(c.num_transitions(), 1);
        assert!(SparseCtmc::new(2).unwrap().steady_state().is_err());
        assert_eq!(SparseCtmc::new(1).unwrap().steady_state().unwrap(), vec![1.0]);
    }

    #[test]
    fn sparse_steady_state_matches_dense() {
        let (dense, _) = k_out_of_n_chain(4, 2, 1.0 / 300.0, 1.0 / 12.0).unwrap();
        let mut sparse = SparseCtmc::new(dense.states()).unwrap();
        for (from, to, rate) in dense.transitions() {
            sparse.add_transition(from, to, rate).unwrap();
        }
        let pi_dense = dense.steady_state().unwrap();
        let pi_sparse = sparse.steady_state().unwrap();
        for (a, b) in pi_sparse.iter().zip(&pi_dense) {
            assert!((a - b).abs() < 1e-10, "sparse {a} vs dense {b}");
        }
        let up = sparse.steady_state_reward(|s| if s < 3 { 1.0 } else { 0.0 }).unwrap();
        let up_dense = dense.steady_state_reward(|s| if s < 3 { 1.0 } else { 0.0 }).unwrap();
        assert!((up - up_dense).abs() < 1e-10);
    }

    #[test]
    fn sparse_transient_matches_dense() {
        let (dense, _) = k_out_of_n_chain(3, 2, 1.0 / 500.0, 1.0 / 24.0).unwrap();
        let mut sparse = SparseCtmc::new(dense.states()).unwrap();
        for (from, to, rate) in dense.transitions() {
            sparse.add_transition(from, to, rate).unwrap();
        }
        assert!(sparse.transient(9, 1.0).is_err());
        assert!(sparse.transient(0, -1.0).is_err());
        assert!(sparse.transient(0, f64::NAN).is_err());
        for t in [0.0, 1.0, 40.0, 2_000.0, 200_000.0] {
            let pi_d = dense.transient(0, t).unwrap();
            let pi_s = sparse.transient(0, t).unwrap();
            for (a, b) in pi_s.iter().zip(&pi_d) {
                assert!((a - b).abs() < 1e-10, "t={t}: sparse {a} vs dense {b}");
            }
            assert!((pi_s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        let r_s = sparse.transient_reward(0, 40.0, |s| s as f64).unwrap();
        let r_d = dense.transient_reward(0, 40.0, |s| s as f64).unwrap();
        assert!((r_s - r_d).abs() < 1e-10);
    }

    #[test]
    fn sparse_duplicate_transitions_aggregate() {
        // Two parallel edges 0->1 behave as one with the summed rate.
        let mut split = SparseCtmc::new(2).unwrap();
        split.add_transition(0, 1, 0.4).unwrap();
        split.add_transition(0, 1, 0.6).unwrap();
        split.add_transition(1, 0, 5.0).unwrap();
        let mut merged = SparseCtmc::new(2).unwrap();
        merged.add_transition(0, 1, 1.0).unwrap();
        merged.add_transition(1, 0, 5.0).unwrap();
        let pi_split = split.steady_state().unwrap();
        let pi_merged = merged.steady_state().unwrap();
        for (a, b) in pi_split.iter().zip(&pi_merged) {
            assert!((a - b).abs() < 1e-12);
        }
        let t_split = split.transient(0, 3.0).unwrap();
        let t_merged = merged.transient(0, 3.0).unwrap();
        for (a, b) in t_split.iter().zip(&t_merged) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_absorbing_chain_concentrates_mass() {
        // 0 -> 1 -> 2 with no way back: all mass ends in state 2.
        let mut c = SparseCtmc::new(3).unwrap();
        c.add_transition(0, 1, 1.0).unwrap();
        c.add_transition(1, 2, 2.0).unwrap();
        let pi = c.steady_state().unwrap();
        assert!(pi[2] > 1.0 - 1e-9, "absorbing mass {}", pi[2]);
        let pt = c.transient(0, 0.5).unwrap();
        assert!(pt[0] > 0.0 && pt[1] > 0.0 && pt[2] > 0.0);
        assert!((pt.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_state_chain_is_trivial() {
        let c = Ctmc::new(1).unwrap();
        assert_eq!(c.steady_state().unwrap(), vec![1.0]);
    }

    #[test]
    fn two_state_availability_matches_closed_form() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 1.0 / 500.0).unwrap();
        c.add_transition(1, 0, 1.0 / 20.0).unwrap();
        let pi = c.steady_state().unwrap();
        assert!((pi[0] - 500.0 / 520.0).abs() < 1e-12);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let availability = c.steady_state_reward(|s| if s == 0 { 1.0 } else { 0.0 }).unwrap();
        assert!((availability - pi[0]).abs() < 1e-15);
    }

    #[test]
    fn birth_death_chain_matches_erlang_formula() {
        // M/M/1-style chain with 3 states and distinct rates; compare with
        // the balance-equation solution computed by hand.
        let mut c = Ctmc::new(3).unwrap();
        c.add_transition(0, 1, 2.0).unwrap();
        c.add_transition(1, 2, 1.0).unwrap();
        c.add_transition(1, 0, 3.0).unwrap();
        c.add_transition(2, 1, 4.0).unwrap();
        let pi = c.steady_state().unwrap();
        // Balance: pi1 = pi0 * 2/3, pi2 = pi1 * 1/4.
        let p0 = 1.0 / (1.0 + 2.0 / 3.0 + 2.0 / 12.0);
        assert!((pi[0] - p0).abs() < 1e-12);
        assert!((pi[1] - p0 * 2.0 / 3.0).abs() < 1e-12);
        assert!((pi[2] - p0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn k_out_of_n_validation_and_limits() {
        assert!(k_out_of_n_chain(0, 1, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 0, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 4, 0.1, 1.0).is_err());
        assert!(k_out_of_n_chain(3, 2, -0.1, 1.0).is_err());
        // A 1-out-of-1 group is the simple repairable unit.
        let a = k_out_of_n_availability(1, 1, 1.0 / 100.0, 1.0 / 10.0).unwrap();
        assert!((a - 100.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn more_redundancy_gives_higher_availability() {
        let lambda = 1.0 / 720.0;
        let mu = 1.0 / 24.0;
        let a_1of2 = k_out_of_n_availability(2, 1, lambda, mu).unwrap();
        let a_2of3 = k_out_of_n_availability(3, 2, lambda, mu).unwrap();
        let a_1of1 = k_out_of_n_availability(1, 1, lambda, mu).unwrap();
        assert!(a_1of2 > a_2of3, "a fail-over pair beats 2-out-of-3");
        assert!(a_2of3 > a_1of1);
        // With monthly failures and 24 h repairs a fail-over pair is down
        // only when both members are failed: about 0.2 % of the time.
        assert!(a_1of2 > 0.997 && a_1of2 < 0.9995, "availability {a_1of2}");
    }

    /// Transient solution of the 2-state repairable unit against the
    /// closed form `p_down(t) = λ/(λ+μ) · (1 − e^{−(λ+μ)t})` from state
    /// "up".
    #[test]
    fn transient_matches_two_state_closed_form() {
        let lambda = 1.0 / 500.0;
        let mu = 1.0 / 20.0;
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, lambda).unwrap();
        c.add_transition(1, 0, mu).unwrap();
        for t in [0.0, 1.0, 10.0, 100.0, 1_000.0, 50_000.0] {
            let pi = c.transient(0, t).unwrap();
            let expected = lambda / (lambda + mu) * (1.0 - (-(lambda + mu) * t).exp());
            assert!(
                (pi[1] - expected).abs() < 1e-10,
                "t={t}: transient {} vs closed form {expected}",
                pi[1]
            );
            assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // From the "down" state the complementary closed form applies.
        let pi = c.transient(1, 30.0).unwrap();
        let expected =
            lambda / (lambda + mu) + mu / (lambda + mu) * (-(lambda + mu) * 30.0_f64).exp();
        assert!((pi[1] - expected).abs() < 1e-10);
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let (chain, first_down) = k_out_of_n_chain(2, 1, 1.0 / 300.0, 1.0 / 12.0).unwrap();
        let pi_t = chain.transient(0, 1e6).unwrap();
        let pi_inf = chain.steady_state().unwrap();
        for (a, b) in pi_t.iter().zip(&pi_inf) {
            assert!((a - b).abs() < 1e-9, "transient {a} vs steady {b}");
        }
        assert_eq!(first_down, 2);
    }

    #[test]
    fn transient_handles_absorbing_states_as_hitting_probabilities() {
        // Fail-over pair with the both-down state absorbing: π₂(t) is the
        // probability of having *hit* total failure by t — the analytic
        // oracle the importance-sampling cross-validation uses.
        let lambda = 1e-3;
        let mu = 1.0;
        let mut c = Ctmc::new(3).unwrap();
        c.add_transition(0, 1, 2.0 * lambda).unwrap();
        c.add_transition(1, 0, mu).unwrap();
        c.add_transition(1, 2, lambda).unwrap(); // no way back: absorbing
        let p10 = c.transient(0, 10.0).unwrap()[2];
        let p100 = c.transient(0, 100.0).unwrap()[2];
        assert!(p10 > 0.0 && p100 > p10, "hitting probability grows: {p10} vs {p100}");
        // Short-horizon first-order magnitude: ~2λ²t²·μ/2-ish is tiny; the
        // quasi-stationary hitting rate is 2λ²/μ per hour.
        let approx = 2.0 * lambda * lambda / mu * 100.0;
        assert!(
            (p100 - approx).abs() / approx < 0.15,
            "p_hit(100) {p100} vs quasi-stationary {approx}"
        );
        // t = 0 is the start distribution.
        assert_eq!(c.transient(0, 0.0).unwrap(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn transient_validates_inputs() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 1.0).unwrap();
        assert!(c.transient(5, 1.0).is_err());
        assert!(c.transient(0, -1.0).is_err());
        assert!(c.transient(0, f64::NAN).is_err());
        assert!(c.transient(0, f64::INFINITY).is_err());
        // A transition-free chain stays where it started.
        let idle = Ctmc::new(2).unwrap();
        assert_eq!(idle.transient(1, 100.0).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn transient_reward_weights_states() {
        let mut c = Ctmc::new(2).unwrap();
        c.add_transition(0, 1, 0.01).unwrap();
        c.add_transition(1, 0, 0.5).unwrap();
        let availability =
            c.transient_reward(0, 200.0, |s| if s == 0 { 1.0 } else { 0.0 }).unwrap();
        let pi = c.transient(0, 200.0).unwrap();
        assert!((availability - pi[0]).abs() < 1e-15);
    }

    #[test]
    fn ctmc_matches_simulation_for_a_failover_pair() {
        // Exact availability of a 1-out-of-2 pair with exponential failure
        // and single-server exponential repair…
        let lambda = 1.0 / 300.0;
        let mu = 1.0 / 12.0;
        let exact = k_out_of_n_availability(2, 1, lambda, mu).unwrap();

        // …compared against the discrete-event engine estimating the same
        // system (marking-dependent aggregate failure rate, one repairer).
        let mut b = ModelBuilder::new("pair");
        let working = b.add_place("working", 2).unwrap();
        let failed = b.add_place("failed", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &crate::Marking| {
            let n = m.tokens(working).max(1) as f64;
            probdist::Dist::Exponential(Exponential::new(n * lambda).unwrap())
        })
        .unwrap()
        .input_arc(working, 1)
        .output_arc(failed, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", Exponential::new(mu).unwrap())
            .unwrap()
            .input_arc(failed, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let mut exp = Experiment::new(model, 100_000.0);
        exp.add_reward(RewardSpec::time_averaged_rate("avail", move |m| {
            if m.tokens(working) > 0 {
                1.0
            } else {
                0.0
            }
        }));
        let summary = exp.run(24, 5).unwrap();
        let simulated = summary.reward("avail").unwrap().interval.point;
        assert!((simulated - exact).abs() < 5e-4, "simulated {simulated} vs exact {exact}");
    }
}
