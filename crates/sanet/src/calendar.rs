//! The event-calendar simulation kernel.
//!
//! Executes one replication in `O(log A + affected)` per event instead of
//! the reference kernel's `O(A + R)`:
//!
//! * **Next-event selection** — stable timed activities (those that keep
//!   their sampled firing time across marking changes) live in an indexed
//!   binary min-heap keyed by `(firing time, activity index)`; the index
//!   tie-break reproduces the reference kernel's linear-scan ordering for
//!   simultaneous firings exactly. Volatile activities (restart policy /
//!   marking-dependent timing) redraw their delay after *every* event by
//!   definition, so they bypass the heap: their fresh minimum falls out of
//!   the per-event refresh walk for free, and the next event is the smaller
//!   of the two minima.
//! * **Enabling updates** — after each firing, the marking's dirty-place
//!   change log is joined with the model's precomputed place→activity
//!   incidence index ([`crate::model::Incidence`]) to find the activities
//!   whose enabling could actually have changed. Gate-bearing activities
//!   without declared reads are revisited unconditionally (conservative),
//!   as are all volatile activities — which keeps every RNG draw in the
//!   same order as a full ascending-index rescan, and therefore every
//!   statistic bit-identical to [`crate::reference`].
//! * **Reward accumulation** — impulse rewards are credited through the
//!   compiled [`RewardTable`]'s per-activity buckets (`O(1)` per event)
//!   and rate rewards through its dense integrated slice.

use std::collections::BTreeSet;

use probdist::SimRng;

use crate::engine::{
    accumulate_rate_rewards, credit_impulses, finalise, fire_activity, prepare_marking,
    sample_delay, RunResult, RunScratch, TraceEvent, MAX_INSTANT_FIRINGS,
};
use crate::model::{Incidence, META_RESAMPLE, META_SCAN_RESIDENT, RESAMPLE_BIT};
use crate::reward::RewardTable;
use crate::{ActivityId, Marking, Model, SanError, Timing};

/// Sentinel for "no scheduled event".
const NO_EVENT: (f64, u32) = (f64::INFINITY, u32::MAX);

/// Lexicographic `(time, activity index)` ordering — the heap key and the
/// tie-break that keeps simultaneous firings in ascending index order, like
/// the reference kernel's linear scan.
#[inline]
fn earlier(a: (f64, u32), b: (f64, u32)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// Runs one replication on the event calendar.
///
/// All working memory comes from `scratch`, reset here at the start of the
/// run — a reused scratch makes the whole replication allocation-free.
pub(crate) fn run(
    model: &Model,
    table: &RewardTable,
    horizon: f64,
    warmup: f64,
    rng: &mut SimRng,
    mut trace: Option<&mut Vec<TraceEvent>>,
    scratch: &mut RunScratch,
) -> Result<RunResult, SanError> {
    let acts = model.activities();
    let inc = model.incidence();
    let n = acts.len();

    let marking = prepare_marking(&mut scratch.marking, model);
    marking.enable_tracking();
    let mut now = 0.0_f64;
    let mut events = 0u64;
    // Telemetry tallies: plain locals on the hot path, flushed with one
    // sharded atomic add per counter at the end of the replication.
    let mut reexamined = 0u64;
    let mut heap_ops = 0u64;
    let mut restarts = 0u64;
    let observed = horizon - warmup;
    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(table.len(), 0.0);

    // Future-event list. Activities whose sample survives marking changes
    // (fixed timing, or `resample_on_change` with declared timing reads) are
    // heap members; conservative resamplers ("scan residents") redraw after
    // every event anyway, so they only occupy `time_of`, with their minimum
    // recomputed during each refresh walk.
    let CalendarScratch {
        time_of,
        heap,
        dirty_places,
        place_seen,
        revisit,
        act_seen,
        resample_due,
    } = &mut scratch.calendar;
    time_of.clear();
    time_of.resize(n, f64::INFINITY);
    heap.reset(n);
    dirty_places.clear();
    place_seen.clear();
    place_seen.resize(model.num_places(), false);
    revisit.clear();
    act_seen.clear();
    act_seen.resize(n, false);
    resample_due.clear();
    resample_due.resize(n, false);
    let mut vol_min = NO_EVENT;

    // Instantaneous activities currently enabled, by ascending index.
    let has_instants = !inc.instants.is_empty();
    let mut instant_enabled: BTreeSet<u32> = BTreeSet::new();
    for &i in &inc.instants {
        if inc.enabled_fast(i as usize, acts, marking.as_slice(), marking) {
            instant_enabled.insert(i);
        }
    }

    // Fire any instantaneous activities enabled in the initial marking.
    cascade(
        model,
        marking,
        rng,
        &mut instant_enabled,
        table,
        acc,
        &mut events,
        now,
        warmup,
        &mut trace,
    )?;
    marking.clear_log();

    // Initial schedule: every enabled timed activity samples a delay in
    // ascending index order (the RNG draw order of a full rescan).
    for (i, activity) in acts.iter().enumerate() {
        if matches!(activity.timing, Timing::Instantaneous) || !activity.is_enabled(marking) {
            continue;
        }
        let t = now + sample_delay(activity, marking, rng);
        time_of[i] = t;
        if inc.meta[i].flags & META_SCAN_RESIDENT != 0 {
            if earlier((t, i as u32), vol_min) {
                vol_min = (t, i as u32);
            }
        } else {
            heap.push(i as u32, t);
            heap_ops += 1;
        }
    }

    loop {
        // The next completion is the smaller of the stable-heap top and the
        // volatile minimum.
        let mut next = vol_min;
        if let Some(top) = heap.peek() {
            if earlier(top, next) {
                next = top;
            }
        }
        let (fire_time, idx) = next;
        // `fire_time` is +inf when nothing is scheduled, so this single
        // comparison covers both "past the horizon" and "no more events".
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(fire_time <= horizon) {
            // No more events before the horizon: accumulate rewards for the
            // remaining interval and stop.
            accumulate_rate_rewards(table, marking, now, horizon, warmup, acc);
            now = horizon;
            break;
        }

        // Integrate rate rewards over [now, fire_time], then fire.
        accumulate_rate_rewards(table, marking, now, fire_time, warmup, acc);
        now = fire_time;
        let i = idx as usize;
        let id = ActivityId(i);
        // Clear the fired activity's schedule slot. Its heap entry (if any)
        // is left stale on purpose: the refresh walk below always revisits
        // the fired activity and either re-keys the entry in place (still
        // enabled — one sift instead of a remove + push) or evicts it.
        let case = fire_activity(model, id, marking, rng);
        time_of[i] = f64::INFINITY;
        events += 1;
        if now >= warmup {
            credit_impulses(table, i, acc);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEvent { time: now, activity: id, case });
        }

        // Process the instantaneous cascade triggered by the firing (reads
        // the change log the firing just appended).
        if has_instants {
            cascade(
                model,
                marking,
                rng,
                &mut instant_enabled,
                table,
                acc,
                &mut events,
                now,
                warmup,
                &mut trace,
            )?;
        }

        // Collect the timed activities whose enabling could have changed or
        // whose sampled delay a write invalidated: the incidence lists of
        // every dirtied place, plus the fired activity itself (its schedule
        // slot was cleared above).
        dirty_places.clear();
        for &p in marking.log() {
            if !place_seen[p as usize] {
                place_seen[p as usize] = true;
                dirty_places.push(p);
            }
        }
        revisit.clear();
        act_seen[i] = true;
        revisit.push(idx);
        for &p in &*dirty_places {
            place_seen[p as usize] = false;
            for &entry in &inc.timed_by_place[p as usize] {
                let a = entry & !RESAMPLE_BIT;
                if entry & RESAMPLE_BIT != 0 {
                    resample_due[a as usize] = true;
                }
                if !act_seen[a as usize] {
                    act_seen[a as usize] = true;
                    revisit.push(a);
                }
            }
        }
        if revisit.len() > 1 {
            revisit.sort_unstable();
        }
        marking.clear_log();

        // Merge-walk `revisit` with the always-revisited set in ascending
        // index order — the reference kernel's RNG draw order — refreshing
        // schedules and recomputing the volatile minimum.
        vol_min = NO_EVENT;
        let (mut ri, mut ai) = (0usize, 0usize);
        loop {
            let a = match (revisit.get(ri), inc.always_revisit.get(ai)) {
                (Some(&r), Some(&v)) => {
                    if r < v {
                        ri += 1;
                        r
                    } else {
                        if r == v {
                            ri += 1;
                        }
                        ai += 1;
                        v
                    }
                }
                (Some(&r), None) => {
                    ri += 1;
                    r
                }
                (None, Some(&v)) => {
                    ai += 1;
                    v
                }
                (None, None) => break,
            };
            let ia = a as usize;
            act_seen[ia] = false;
            let due = resample_due[ia];
            resample_due[ia] = false;
            let flags = inc.meta[ia].flags;
            debug_assert!(!matches!(acts[ia].timing, Timing::Instantaneous));
            let scan_resident = flags & META_SCAN_RESIDENT != 0;
            reexamined += 1;
            if !inc.enabled_fast(ia, acts, marking.as_slice(), marking) {
                time_of[ia] = f64::INFINITY;
                if !scan_resident {
                    heap.remove(a);
                    heap_ops += 1;
                }
                continue;
            }
            if time_of[ia].is_infinite() || scan_resident || (due && flags & META_RESAMPLE != 0) {
                // A finite slot being redrawn is a restart: the previous
                // sample was invalidated by a marking change.
                if time_of[ia].is_finite() {
                    restarts += 1;
                }
                let t = now + sample_delay(&acts[ia], marking, rng);
                time_of[ia] = t;
                if !scan_resident {
                    heap.upsert(a, t);
                    heap_ops += 1;
                }
            }
            if scan_resident && earlier((time_of[ia], a), vol_min) {
                vol_min = (time_of[ia], a);
            }
        }
    }

    {
        use probdist::telemetry::{counter_add, MetricId};
        counter_add(MetricId::SanEventsFired, events);
        counter_add(MetricId::SanReexaminations, reexamined);
        counter_add(MetricId::SanHeapOps, heap_ops);
        counter_add(MetricId::SanRestarts, restarts);
    }
    Ok(finalise(table, acc, marking, observed, events, now))
}

/// Re-checks the enabling of one instantaneous activity and updates the
/// enabled set.
#[inline]
fn update_instant(
    enabled: &mut BTreeSet<u32>,
    inc: &Incidence,
    acts: &[crate::model::Activity],
    marking: &Marking,
    idx: u32,
) {
    if inc.enabled_fast(idx as usize, acts, marking.as_slice(), marking) {
        enabled.insert(idx);
    } else {
        enabled.remove(&idx);
    }
}

/// Fires enabled instantaneous activities (lowest index first) until none
/// remain, keeping the enabled set in sync through the change log, and
/// returning an error if the cascade does not stabilise.
#[allow(clippy::too_many_arguments)]
fn cascade(
    model: &Model,
    marking: &mut Marking,
    rng: &mut SimRng,
    enabled: &mut BTreeSet<u32>,
    table: &RewardTable,
    acc: &mut [f64],
    events: &mut u64,
    now: f64,
    warmup: f64,
    trace: &mut Option<&mut Vec<TraceEvent>>,
) -> Result<(), SanError> {
    let inc = model.incidence();
    if inc.instants.is_empty() {
        return Ok(());
    }
    let acts = model.activities();
    let mut checkpoint = 0usize;
    let mut firings = 0usize;
    loop {
        // Fold writes since the last iteration (initially: the writes of
        // the timed firing that triggered this cascade) into the enabled
        // set, then re-check the conservative (undeclared gate) instants.
        let log_len = marking.log_len();
        for li in checkpoint..log_len {
            let p = marking.log()[li] as usize;
            for &a in &inc.instant_by_place[p] {
                update_instant(enabled, inc, acts, marking, a);
            }
        }
        checkpoint = log_len;
        for &a in &inc.instant_conservative {
            update_instant(enabled, inc, acts, marking, a);
        }

        let Some(&idx) = enabled.iter().next() else { return Ok(()) };
        let id = ActivityId(idx as usize);
        let case = fire_activity(model, id, marking, rng);
        *events += 1;
        if now >= warmup {
            credit_impulses(table, idx as usize, acc);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEvent { time: now, activity: id, case });
        }
        // The fired activity's own writes are in the log, but a firing that
        // writes nothing (pure no-op gates) must still be re-checked — the
        // reference kernel rescans it either way.
        update_instant(enabled, inc, acts, marking, idx);
        firings += 1;
        if firings > MAX_INSTANT_FIRINGS {
            return Err(SanError::UnstableInstantaneousLoop { firings });
        }
    }
}

/// Reusable working state for one calendar-kernel run. Owned per worker by
/// [`RunScratch`](crate::RunScratch) so a replication re-primes these buffers
/// in place instead of allocating them afresh.
#[derive(Debug, Default)]
pub(crate) struct CalendarScratch {
    time_of: Vec<f64>,
    heap: IndexedHeap,
    dirty_places: Vec<u32>,
    place_seen: Vec<bool>,
    revisit: Vec<u32>,
    act_seen: Vec<bool>,
    resample_due: Vec<bool>,
}

/// An indexed binary min-heap over `(firing time, activity index)` keys with
/// `O(log n)` insert and remove-by-activity. `pos` maps each activity to its
/// current slot so disabled activities can be evicted without a scan.
#[derive(Debug, Default)]
struct IndexedHeap {
    entries: Vec<(f64, u32)>,
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl IndexedHeap {
    #[cfg(test)]
    fn new(n: usize) -> IndexedHeap {
        IndexedHeap { entries: Vec::with_capacity(n), pos: vec![ABSENT; n] }
    }

    /// Empties the heap and re-sizes the position map for a model with `n`
    /// activities, keeping both allocations.
    fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.pos.clear();
        self.pos.resize(n, ABSENT);
    }

    #[inline]
    fn peek(&self) -> Option<(f64, u32)> {
        self.entries.first().copied()
    }

    fn push(&mut self, activity: u32, time: f64) {
        debug_assert_eq!(self.pos[activity as usize], ABSENT, "activity already scheduled");
        let slot = self.entries.len();
        self.entries.push((time, activity));
        self.pos[activity as usize] = slot as u32;
        self.sift_up(slot);
    }

    /// Inserts the activity, or re-keys it in place if already present (a
    /// resample or the re-schedule of a just-fired activity) — one sift
    /// instead of a remove + push.
    fn upsert(&mut self, activity: u32, time: f64) {
        let slot = self.pos[activity as usize];
        if slot == ABSENT {
            self.push(activity, time);
            return;
        }
        let slot = slot as usize;
        self.entries[slot].0 = time;
        // Only one direction can apply; sift_up is a no-op unless sift_down
        // was (the element that sift_down leaves at `slot` is always a
        // former descendant, already ≥ the parent).
        self.sift_down(slot);
        self.sift_up(slot);
    }

    fn remove(&mut self, activity: u32) {
        let slot = self.pos[activity as usize];
        if slot == ABSENT {
            return;
        }
        let slot = slot as usize;
        let last = self.entries.len() - 1;
        self.entries.swap(slot, last);
        self.pos[self.entries[slot].1 as usize] = slot as u32;
        self.entries.pop();
        self.pos[activity as usize] = ABSENT;
        if slot < self.entries.len() {
            self.sift_down(slot);
            self.sift_up(slot);
        }
    }

    fn sift_up(&mut self, mut slot: usize) {
        while slot > 0 {
            let parent = (slot - 1) / 2;
            if !earlier(self.entries[slot], self.entries[parent]) {
                break;
            }
            self.entries.swap(slot, parent);
            self.pos[self.entries[slot].1 as usize] = slot as u32;
            self.pos[self.entries[parent].1 as usize] = parent as u32;
            slot = parent;
        }
    }

    fn sift_down(&mut self, mut slot: usize) {
        loop {
            let left = 2 * slot + 1;
            let right = left + 1;
            let mut smallest = slot;
            if left < self.entries.len() && earlier(self.entries[left], self.entries[smallest]) {
                smallest = left;
            }
            if right < self.entries.len() && earlier(self.entries[right], self.entries[smallest]) {
                smallest = right;
            }
            if smallest == slot {
                break;
            }
            self.entries.swap(slot, smallest);
            self.pos[self.entries[slot].1 as usize] = slot as u32;
            self.pos[self.entries[smallest].1 as usize] = smallest as u32;
            slot = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(heap: &mut IndexedHeap) -> Vec<(f64, u32)> {
        let mut out = Vec::new();
        while let Some(top) = heap.peek() {
            out.push(top);
            heap.remove(top.1);
        }
        out
    }

    #[test]
    fn heap_orders_by_time_then_index() {
        let mut heap = IndexedHeap::new(6);
        heap.push(3, 5.0);
        heap.push(0, 7.0);
        heap.push(5, 5.0);
        heap.push(1, 5.0);
        heap.push(2, 1.0);
        assert_eq!(
            drain(&mut heap),
            vec![(1.0, 2), (5.0, 1), (5.0, 3), (5.0, 5), (7.0, 0)],
            "ties must break by ascending activity index"
        );
    }

    #[test]
    fn heap_remove_by_activity_keeps_invariants() {
        let mut heap = IndexedHeap::new(8);
        for (a, t) in [(0, 9.0), (1, 2.0), (2, 7.0), (3, 4.0), (4, 6.0), (5, 3.0)] {
            heap.push(a, t);
        }
        heap.remove(1); // current minimum
        heap.remove(4); // interior node
        heap.remove(7); // absent: no-op
        assert_eq!(drain(&mut heap), vec![(3.0, 5), (4.0, 3), (7.0, 2), (9.0, 0)]);
    }

    #[test]
    fn heap_reinsertion_after_removal() {
        let mut heap = IndexedHeap::new(4);
        heap.push(2, 10.0);
        heap.remove(2);
        heap.push(2, 1.0);
        heap.push(0, 5.0);
        assert_eq!(drain(&mut heap), vec![(1.0, 2), (5.0, 0)]);
    }

    #[test]
    fn heap_upsert_rekeys_in_place() {
        let mut heap = IndexedHeap::new(6);
        for (a, t) in [(0, 4.0), (1, 2.0), (2, 9.0), (3, 6.0)] {
            heap.push(a, t);
        }
        heap.upsert(1, 12.0); // min moves to the bottom
        heap.upsert(2, 1.0); // interior moves to the top
        heap.upsert(5, 3.0); // absent: plain insert
        assert_eq!(drain(&mut heap), vec![(1.0, 2), (3.0, 5), (4.0, 0), (6.0, 3), (12.0, 1)]);
    }
}
