//! The retained naive full-scan simulation kernel.
//!
//! This is the original `O(A)`-per-event engine, kept as the semantics
//! oracle for the event-calendar kernel ([`crate::calendar`]): next-event
//! selection is a linear scan over every activity's scheduled firing,
//! instantaneous firing rescans all activities from index zero, and the
//! schedule refresh after each event re-examines the whole model. It is
//! deliberately independent of the incidence index and of
//! [`enabling_reads`](crate::ActivityBuilder::enabling_reads) declarations,
//! so a differential run against the calendar kernel catches both engine
//! bugs and unsound declarations. Reward accumulation goes through the same
//! compiled [`RewardTable`] primitives, so the arithmetic cannot drift.

use probdist::SimRng;

use crate::engine::{
    accumulate_rate_rewards, credit_impulses, finalise, fire_activity, prepare_marking,
    sample_delay, RunResult, RunScratch, TraceEvent, MAX_INSTANT_FIRINGS,
};
use crate::reward::RewardTable;
use crate::{ActivityId, Marking, Model, SanError, Timing};

/// Reusable working state for one reference-kernel run, owned per worker by
/// [`RunScratch`](crate::RunScratch). The marking and reward accumulator are
/// shared with the calendar kernel's scratch; these two buffers are the
/// reference kernel's own.
#[derive(Debug, Default)]
pub(crate) struct ReferenceScratch {
    /// Scheduled firing time per timed activity.
    schedule: Vec<Option<f64>>,
    /// Per-place "written during this event" flags.
    written: Vec<bool>,
}

/// Runs one replication with full rescans after every event.
pub(crate) fn run(
    model: &Model,
    table: &RewardTable,
    horizon: f64,
    warmup: f64,
    rng: &mut SimRng,
    mut trace: Option<&mut Vec<TraceEvent>>,
    scratch: &mut RunScratch,
) -> Result<RunResult, SanError> {
    let marking = prepare_marking(&mut scratch.marking, model);
    // Track writes so declared timing reads can be honoured (naively): a
    // restart-policy activity with declared reads resamples only when one
    // of them was written during the event.
    marking.enable_tracking();
    let mut now = 0.0_f64;
    let mut events = 0u64;
    // Telemetry tallies: plain locals on the hot path, flushed with one
    // sharded atomic add per counter at the end of the replication.
    let mut reexamined = 0u64;
    let mut restarts = 0u64;
    let observed = horizon - warmup;
    let acc = &mut scratch.acc;
    acc.clear();
    acc.resize(table.len(), 0.0);
    let ReferenceScratch { schedule, written } = &mut scratch.reference;
    written.clear();
    written.resize(model.num_places(), false);
    schedule.clear();
    schedule.resize(model.num_activities(), None);

    // Fire any instantaneous activities enabled in the initial marking,
    // then schedule timed activities.
    fire_instantaneous(model, marking, rng, &mut trace, &mut events, now, table, acc, warmup)?;
    marking.clear_log();
    refresh_schedule(
        model,
        marking,
        schedule,
        rng,
        now,
        true,
        written,
        &mut reexamined,
        &mut restarts,
    );

    loop {
        // Find the earliest scheduled completion by scanning every slot.
        let next = schedule
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (t, i)))
            .min_by(|a, b| a.partial_cmp(b).expect("firing times are finite"));

        let (fire_time, activity_idx) = match next {
            Some((t, i)) if t <= horizon => (t, i),
            _ => {
                // No more events before the horizon: accumulate rewards
                // for the remaining interval and stop.
                accumulate_rate_rewards(table, marking, now, horizon, warmup, acc);
                now = horizon;
                break;
            }
        };

        // Integrate rate rewards over [now, fire_time].
        accumulate_rate_rewards(table, marking, now, fire_time, warmup, acc);
        now = fire_time;

        // Fire the activity.
        let activity_id = ActivityId(activity_idx);
        let case = fire_activity(model, activity_id, marking, rng);
        schedule[activity_idx] = None;
        events += 1;
        if now >= warmup {
            credit_impulses(table, activity_idx, acc);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEvent { time: now, activity: activity_id, case });
        }

        // Process any instantaneous cascade triggered by the firing.
        fire_instantaneous(model, marking, rng, &mut trace, &mut events, now, table, acc, warmup)?;

        // Update the timed-activity schedule after the marking change.
        for &p in marking.log() {
            written[p as usize] = true;
        }
        refresh_schedule(
            model,
            marking,
            schedule,
            rng,
            now,
            false,
            written,
            &mut reexamined,
            &mut restarts,
        );
        for &p in marking.log() {
            written[p as usize] = false;
        }
        marking.clear_log();
    }

    {
        use probdist::telemetry::{counter_add, MetricId};
        counter_add(MetricId::SanEventsFired, events);
        counter_add(MetricId::SanReexaminations, reexamined);
        counter_add(MetricId::SanRestarts, restarts);
    }
    Ok(finalise(table, acc, marking, observed, events, now))
}

/// Fires enabled instantaneous activities until none remain enabled,
/// rescanning all activities from index zero each time, and returning an
/// error if the cascade does not stabilise.
#[allow(clippy::too_many_arguments)]
fn fire_instantaneous(
    model: &Model,
    marking: &mut Marking,
    rng: &mut SimRng,
    trace: &mut Option<&mut Vec<TraceEvent>>,
    events: &mut u64,
    now: f64,
    table: &RewardTable,
    acc: &mut [f64],
    warmup: f64,
) -> Result<(), SanError> {
    let mut firings = 0usize;
    loop {
        let next = model
            .activities()
            .iter()
            .enumerate()
            .find(|(_, a)| matches!(a.timing, Timing::Instantaneous) && a.is_enabled(marking))
            .map(|(i, _)| i);
        let Some(idx) = next else { return Ok(()) };
        let id = ActivityId(idx);
        let case = fire_activity(model, id, marking, rng);
        *events += 1;
        if now >= warmup {
            credit_impulses(table, idx, acc);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEvent { time: now, activity: id, case });
        }
        firings += 1;
        if firings > MAX_INSTANT_FIRINGS {
            return Err(SanError::UnstableInstantaneousLoop { firings });
        }
    }
}

/// Brings the timed-activity schedule in line with the current marking:
/// disabled activities lose their sample, newly enabled activities sample a
/// delay, and enabled activities with the restart policy (or marking-
/// dependent timing) resample — always, or only when one of their declared
/// timing-read places is in the event's `written` set.
#[allow(clippy::too_many_arguments)]
fn refresh_schedule(
    model: &Model,
    marking: &Marking,
    schedule: &mut [Option<f64>],
    rng: &mut SimRng,
    now: f64,
    initial: bool,
    written: &[bool],
    reexamined: &mut u64,
    restarts: &mut u64,
) {
    for (i, activity) in model.activities().iter().enumerate() {
        if matches!(activity.timing, Timing::Instantaneous) {
            continue;
        }
        *reexamined += 1;
        if !activity.is_enabled(marking) {
            schedule[i] = None;
            continue;
        }
        let resample = !initial
            && activity.resample_on_change
            && match &activity.timing_reads {
                None => true,
                Some(reads) => reads.iter().any(|p| written[p.index()]),
            };
        if schedule[i].is_none() || resample {
            // A live sample being redrawn is a restart, mirroring the
            // calendar kernel's accounting.
            if schedule[i].is_some() {
                *restarts += 1;
            }
            schedule[i] = Some(now + sample_delay(activity, marking, rng));
        }
    }
}
