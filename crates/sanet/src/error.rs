use std::error::Error;
use std::fmt;

use probdist::DistError;

/// Error type for model construction, simulation, and result queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SanError {
    /// A place or activity name was declared twice within one model.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A place or activity id referenced something that does not belong to
    /// the model being built or simulated.
    UnknownId {
        /// Description of the reference that failed to resolve.
        what: String,
    },
    /// A reward with the requested name does not exist in the results.
    UnknownReward {
        /// The requested reward name.
        name: String,
    },
    /// An activity was declared with no effect (no input and no output), or
    /// with case probabilities that do not sum to one.
    InvalidActivity {
        /// The activity name.
        name: String,
        /// Explanation of the problem.
        reason: String,
    },
    /// The model has no activities, or the simulation horizon is not
    /// positive, or a replication count of zero was requested.
    InvalidExperiment {
        /// Explanation of the problem.
        reason: String,
    },
    /// An instantaneous-activity cascade did not stabilise (the model has a
    /// loop of zero-delay activities).
    UnstableInstantaneousLoop {
        /// Number of zero-delay firings attempted before giving up.
        firings: usize,
    },
    /// A distribution parameter error surfaced while building or sampling.
    Distribution(DistError),
    /// Reachability analysis ([`Model::analyze`](crate::Model::analyze))
    /// classified the model as simulation-only, so an analytic generator
    /// cannot be assembled.
    NotAnalytic {
        /// The model name.
        model: String,
        /// What blocks the analytic path (budget exhaustion, named
        /// non-exponential activities, vanishing loops, multi-class
        /// structure).
        reasons: Vec<String>,
    },
    /// Static analysis ([`Model::lint`](crate::Model::lint)) found
    /// diagnostics at or above the requested deny level.
    LintRejected {
        /// The model name.
        model: String,
        /// Number of diagnostics at or above the deny level.
        rejected: usize,
        /// The offending diagnostics rendered one per line.
        details: String,
    },
}

impl fmt::Display for SanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanError::DuplicateName { name } => write!(f, "duplicate name `{name}` in model"),
            SanError::UnknownId { what } => write!(f, "unknown reference: {what}"),
            SanError::UnknownReward { name } => write!(f, "no reward named `{name}` in results"),
            SanError::InvalidActivity { name, reason } => {
                write!(f, "invalid activity `{name}`: {reason}")
            }
            SanError::InvalidExperiment { reason } => write!(f, "invalid experiment: {reason}"),
            SanError::UnstableInstantaneousLoop { firings } => write!(
                f,
                "instantaneous activities did not stabilise after {firings} zero-delay firings"
            ),
            SanError::Distribution(e) => write!(f, "distribution error: {e}"),
            SanError::NotAnalytic { model, reasons } => {
                write!(f, "model `{model}` is not analytically solvable: {}", reasons.join("; "))
            }
            SanError::LintRejected { model, rejected, details } => write!(
                f,
                "static analysis rejected model `{model}`: {rejected} diagnostic(s) at or above \
                 the deny level\n{details}"
            ),
        }
    }
}

impl Error for SanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SanError::Distribution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for SanError {
    fn from(e: DistError) -> Self {
        SanError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SanError::DuplicateName { name: "oss_up".into() };
        assert!(e.to_string().contains("oss_up"));
        let e = SanError::UnknownReward { name: "availability".into() };
        assert!(e.to_string().contains("availability"));
    }

    #[test]
    fn dist_error_converts_and_sources() {
        let inner = DistError::EmptyData;
        let e: SanError = inner.clone().into();
        assert_eq!(e, SanError::Distribution(inner));
        assert!(Error::source(&e).is_some());
    }
}
