use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use probdist::Dist;

use crate::{Marking, PlaceId, SanError};

/// Identifier of an activity within a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActivityId(pub(crate) usize);

impl ActivityId {
    /// The raw index of the activity in the model's activity table.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A predicate over the current marking (input-gate enabling condition).
pub type Predicate = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;

/// A marking transformation (input- or output-gate function).
pub type MarkingFn = Arc<dyn Fn(&mut Marking) + Send + Sync>;

/// A marking-dependent firing distribution.
pub type DistFn = Arc<dyn Fn(&Marking) -> Dist + Send + Sync>;

/// How an activity samples its firing delay.
#[derive(Clone)]
pub enum Timing {
    /// The activity completes immediately (zero delay) once enabled.
    /// Instantaneous activities have priority over all timed activities.
    Instantaneous,
    /// The activity completes after a delay drawn from a fixed distribution.
    Timed(Dist),
    /// The activity completes after a delay drawn from a distribution that
    /// depends on the marking at activation time (e.g. an aggregate failure
    /// rate proportional to the number of working units).
    TimedFn(DistFn),
}

impl fmt::Debug for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Timing::Instantaneous => write!(f, "Instantaneous"),
            Timing::Timed(d) => write!(f, "Timed({})", d.family()),
            Timing::TimedFn(_) => write!(f, "TimedFn(<marking-dependent>)"),
        }
    }
}

/// An input gate: an enabling predicate plus a marking transformation
/// applied when the activity fires.
#[derive(Clone)]
pub(crate) struct InputGate {
    pub(crate) predicate: Predicate,
    pub(crate) function: MarkingFn,
}

/// An output gate: a marking transformation applied when the activity
/// completes (per case).
#[derive(Clone)]
pub(crate) struct OutputGate {
    pub(crate) function: MarkingFn,
}

/// One probabilistic case of an activity (its output side).
#[derive(Clone)]
pub(crate) struct Case {
    pub(crate) probability: f64,
    pub(crate) output_arcs: Vec<(PlaceId, u64)>,
    pub(crate) output_gates: Vec<OutputGate>,
}

/// An activity (transition) of the network.
#[derive(Clone)]
pub(crate) struct Activity {
    pub(crate) name: String,
    pub(crate) timing: Timing,
    pub(crate) input_arcs: Vec<(PlaceId, u64)>,
    pub(crate) input_gates: Vec<InputGate>,
    pub(crate) cases: Vec<Case>,
    /// Restart policy: when `true`, an enabled activity whose firing time was
    /// already sampled is resampled whenever any other activity changes the
    /// marking. This is required for marking-dependent (aggregate-rate)
    /// timings; for memoryless (exponential) timings it does not change the
    /// distribution of the sample path.
    pub(crate) resample_on_change: bool,
    /// Places the activity's input-gate predicates read, when declared via
    /// [`ActivityBuilder::enabling_reads`]. `None` with gates present means
    /// the reads are unknown and the scheduler must treat the enabling as
    /// depending on every place.
    pub(crate) declared_reads: Option<Vec<PlaceId>>,
    /// Places the activity's timing distribution reads, when declared via
    /// [`ActivityBuilder::timing_reads`]. For a `resample_on_change`
    /// activity, `Some` refines the restart policy: the sampled delay is
    /// kept unless one of these places is written. `None` keeps the
    /// conservative policy (resample after every marking change).
    pub(crate) timing_reads: Option<Vec<PlaceId>>,
}

impl Activity {
    /// Whether the activity must redraw its firing delay after *every*
    /// marking change (conservative restart policy): it resamples on change
    /// but has not declared which places its timing reads. Such activities
    /// bypass the calendar heap — their schedule is refreshed (and their
    /// minimum recomputed) on every event anyway.
    pub(crate) fn scan_resident(&self) -> bool {
        self.resample_on_change && self.timing_reads.is_none()
    }
}

impl fmt::Debug for Activity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Activity")
            .field("name", &self.name)
            .field("timing", &self.timing)
            .field("input_arcs", &self.input_arcs)
            .field("input_gates", &self.input_gates.len())
            .field("cases", &self.cases.len())
            .field("resample_on_change", &self.resample_on_change)
            .finish()
    }
}

impl Activity {
    /// Whether the activity is enabled in the given marking: every input arc
    /// is covered and every input-gate predicate holds.
    pub(crate) fn is_enabled(&self, marking: &Marking) -> bool {
        self.input_arcs.iter().all(|&(p, n)| marking.has_at_least(p, n))
            && self.input_gates.iter().all(|g| (g.predicate)(marking))
    }
}

#[derive(Debug, Clone)]
pub(crate) struct PlaceInfo {
    pub(crate) name: String,
    pub(crate) initial_tokens: u64,
}

/// Precomputed enabling-dependency index of a model, built once in
/// [`ModelBuilder::build`] and consulted by the event-calendar scheduler
/// after every marking change.
///
/// An activity's enabling is a pure function of the places it reads: its
/// input-arc places plus whatever its input-gate predicates inspect. Arc
/// reads are known from the structure; gate reads are known only when the
/// model declares them ([`ActivityBuilder::enabling_reads`]), otherwise the
/// activity is registered conservatively (re-examined after every event).
/// Activities with the restart policy (`resample_on_change`, which includes
/// every marking-dependent [`Timing::TimedFn`]) must redraw their firing
/// delay after *every* marking change regardless, so they are always
/// revisited — that keeps the RNG draw sequence bit-identical to a full
/// rescan.
/// Bit set on a [`Incidence::timed_by_place`] entry whose write also
/// invalidates the activity's sampled delay (a declared timing read).
pub(crate) const RESAMPLE_BIT: u32 = 1 << 31;

/// Activity-meta flag: the activity has input gates (the flat arc check must
/// fall back to the gate predicates).
pub(crate) const META_HAS_GATES: u8 = 1 << 0;
/// Activity-meta flag: conservative resampler (redraws after every event and
/// bypasses the calendar heap).
pub(crate) const META_SCAN_RESIDENT: u8 = 1 << 1;
/// Activity-meta flag: restart policy (`resample_on_change`).
pub(crate) const META_RESAMPLE: u8 = 1 << 2;

/// Compact per-activity scheduling metadata: policy flags plus a span into
/// the model's flattened input-arc table. The event-calendar kernel's hot
/// paths (enabling checks, the refresh walk) read these two dense arrays
/// instead of chasing pointers through each [`Activity`]'s own vectors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ActivityMeta {
    pub(crate) arc_start: u32,
    pub(crate) arc_len: u16,
    pub(crate) flags: u8,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct Incidence {
    /// place index → timed activities registered on it, ascending by
    /// activity index; an entry is the activity index, with [`RESAMPLE_BIT`]
    /// set when a write to the place must additionally redraw the
    /// activity's sampled delay (declared timing read).
    pub(crate) timed_by_place: Vec<Vec<u32>>,
    /// place index → instantaneous activities whose enabling may depend on
    /// it (ascending activity index).
    pub(crate) instant_by_place: Vec<Vec<u32>>,
    /// Timed activities revisited after every event: conservative
    /// resamplers (`resample_on_change` without declared timing reads) and
    /// gate-bearing activities without declared enabling reads (ascending).
    pub(crate) always_revisit: Vec<u32>,
    /// Instantaneous activities with undeclared gate reads, re-checked after
    /// every firing (ascending).
    pub(crate) instant_conservative: Vec<u32>,
    /// Every instantaneous activity (ascending).
    pub(crate) instants: Vec<u32>,
    /// Per-activity scheduling metadata (flags + flat-arc span).
    pub(crate) meta: Vec<ActivityMeta>,
    /// Every activity's input arcs as `(place index, tokens)`, flattened in
    /// activity order; indexed through [`ActivityMeta`].
    pub(crate) arcs: Vec<(u32, u64)>,
}

impl Incidence {
    fn build(places: usize, activities: &[Activity]) -> Incidence {
        let mut inc = Incidence {
            timed_by_place: vec![Vec::new(); places],
            instant_by_place: vec![Vec::new(); places],
            always_revisit: Vec::new(),
            instant_conservative: Vec::new(),
            instants: Vec::new(),
            meta: Vec::with_capacity(activities.len()),
            arcs: Vec::new(),
        };
        let mut dep_seen = vec![usize::MAX; places];
        let mut dep_slot = vec![0usize; places];
        for (i, activity) in activities.iter().enumerate() {
            let idx = i as u32;
            let instant = matches!(activity.timing, Timing::Instantaneous);

            let arc_start = inc.arcs.len() as u32;
            inc.arcs.extend(activity.input_arcs.iter().map(|&(p, n)| (p.0 as u32, n)));
            let mut flags = 0u8;
            if !activity.input_gates.is_empty() {
                flags |= META_HAS_GATES;
            }
            if activity.scan_resident() {
                flags |= META_SCAN_RESIDENT;
            }
            if activity.resample_on_change {
                flags |= META_RESAMPLE;
            }
            inc.meta.push(ActivityMeta {
                arc_start,
                arc_len: activity.input_arcs.len().try_into().expect("fewer than 65536 arcs"),
                flags,
            });

            if instant {
                inc.instants.push(idx);
            }
            let gates_conservative =
                !activity.input_gates.is_empty() && activity.declared_reads.is_none();
            if instant {
                if gates_conservative {
                    inc.instant_conservative.push(idx);
                }
            } else if gates_conservative || activity.scan_resident() {
                inc.always_revisit.push(idx);
            }

            // Register enabling dependencies (arc places plus declared gate
            // reads) unless conservative, and — for restart-policy timed
            // activities — declared timing reads, OR-ing the resample bit
            // into an existing entry for the same place.
            let mut register = |place: PlaceId, bit: u32, list: &mut Vec<Vec<u32>>| {
                if dep_seen[place.0] == i {
                    list[place.0][dep_slot[place.0]] |= bit;
                } else {
                    dep_seen[place.0] = i;
                    dep_slot[place.0] = list[place.0].len();
                    list[place.0].push(idx | bit);
                }
            };
            if instant {
                if !gates_conservative {
                    for &(place, _) in &activity.input_arcs {
                        register(place, 0, &mut inc.instant_by_place);
                    }
                    for &place in activity.declared_reads.iter().flatten() {
                        register(place, 0, &mut inc.instant_by_place);
                    }
                }
            } else {
                if !gates_conservative {
                    for &(place, _) in &activity.input_arcs {
                        register(place, 0, &mut inc.timed_by_place);
                    }
                    for &place in activity.declared_reads.iter().flatten() {
                        register(place, 0, &mut inc.timed_by_place);
                    }
                }
                if activity.resample_on_change {
                    for &place in activity.timing_reads.iter().flatten() {
                        register(place, RESAMPLE_BIT, &mut inc.timed_by_place);
                    }
                }
            }
        }
        inc
    }

    /// Fast enabling check through the flat arc table, falling back to the
    /// activity's gate predicates only when it has gates. Equivalent to
    /// [`Activity::is_enabled`] by construction.
    #[inline]
    pub(crate) fn enabled_fast(
        &self,
        idx: usize,
        activities: &[Activity],
        tokens: &[u64],
        marking: &Marking,
    ) -> bool {
        let meta = &self.meta[idx];
        let span = meta.arc_start as usize..meta.arc_start as usize + meta.arc_len as usize;
        for &(place, need) in &self.arcs[span] {
            if tokens[place as usize] < need {
                return false;
            }
        }
        meta.flags & META_HAS_GATES == 0
            || activities[idx].input_gates.iter().all(|g| (g.predicate)(marking))
    }
}

/// An immutable stochastic activity network, ready to simulate.
///
/// Build one with [`ModelBuilder`]. A `Model` is cheap to clone (all gate
/// closures are reference-counted) and can be shared across threads for
/// parallel replications.
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    places: Vec<PlaceInfo>,
    activities: Vec<Activity>,
    place_index: HashMap<String, PlaceId>,
    activity_index: HashMap<String, ActivityId>,
    incidence: Incidence,
    /// Memoised outcome of the debug-build pre-simulation lint; shared by
    /// plain clones (same structure, same verdict) and reset by
    /// [`Model::clone_with_timings`].
    lint_gate: Arc<OnceLock<Option<SanError>>>,
}

impl Model {
    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of activities.
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }

    /// The initial marking of the network.
    pub fn initial_marking(&self) -> Marking {
        Marking::new(self.places.iter().map(|p| p.initial_tokens).collect())
    }

    /// Resets `marking` in place to this model's initial marking, reusing
    /// its allocations (the scratch-based kernels call this once per
    /// replication instead of [`Model::initial_marking`]).
    pub(crate) fn reset_marking(&self, marking: &mut Marking) {
        marking.reset_from(self.places.iter().map(|p| p.initial_tokens));
    }

    /// Looks up a place by (fully scoped) name.
    pub fn place(&self, name: &str) -> Option<PlaceId> {
        self.place_index.get(name).copied()
    }

    /// Looks up an activity by (fully scoped) name.
    pub fn activity(&self, name: &str) -> Option<ActivityId> {
        self.activity_index.get(name).copied()
    }

    /// Name of the given place.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn place_name(&self, id: PlaceId) -> &str {
        &self.places[id.0].name
    }

    /// Name of the given activity.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this model.
    pub fn activity_name(&self, id: ActivityId) -> &str {
        &self.activities[id.0].name
    }

    /// All place names in id order.
    pub fn place_names(&self) -> impl Iterator<Item = &str> {
        self.places.iter().map(|p| p.name.as_str())
    }

    /// All activity names in id order.
    pub fn activity_names(&self) -> impl Iterator<Item = &str> {
        self.activities.iter().map(|a| a.name.as_str())
    }

    pub(crate) fn activities(&self) -> &[Activity] {
        &self.activities
    }

    pub(crate) fn activity_ref(&self, id: ActivityId) -> &Activity {
        &self.activities[id.0]
    }

    pub(crate) fn incidence(&self) -> &Incidence {
        &self.incidence
    }

    /// Statically analyses the model with the default probe configuration
    /// and no rewards; see [`crate::lint`] for the diagnostic code table.
    pub fn lint(&self) -> crate::lint::LintReport {
        self.lint_with(&crate::lint::LintConfig::default(), &[])
    }

    /// Statically analyses the model, probing its gate, timing, and reward
    /// closures over a fuzzed marking corpus; see [`crate::lint`].
    pub fn lint_with(
        &self,
        config: &crate::lint::LintConfig,
        rewards: &[crate::RewardSpec],
    ) -> crate::lint::LintReport {
        crate::lint::lint_model(self, config, rewards)
    }

    /// Explores the reachable marking graph under the default budget and
    /// classifies boundedness, ergodicity, timing, and solver
    /// admissibility; see [`crate::reach`].
    pub fn analyze(&self) -> crate::reach::ReachReport {
        self.analyze_with(&crate::reach::ReachConfig::default())
    }

    /// Explores the reachable marking graph under `config`; see
    /// [`crate::reach`] for the exploration semantics and the `SAN04x`
    /// diagnostics derived from the report.
    pub fn analyze_with(&self, config: &crate::reach::ReachConfig) -> crate::reach::ReachReport {
        crate::reach::explore(self, config)
    }

    /// Debug-build guard run by [`Simulator::run`](crate::Simulator::run):
    /// rejects models with Error-level lint diagnostics before the first
    /// replication. Memoised per model so repeated runs pay nothing; a
    /// no-op in release builds (`cfg!` rather than `#[cfg]` so both
    /// profiles compile the same code, the optimiser erases the branch).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::LintRejected`] when the lint finds Error-level
    /// diagnostics.
    pub(crate) fn debug_lint(&self) -> Result<(), SanError> {
        if !cfg!(debug_assertions) {
            return Ok(());
        }
        let verdict = self.lint_gate.get_or_init(|| {
            let config = crate::lint::LintConfig { probes: 64, ..Default::default() };
            self.lint_with(&config, &[]).deny(crate::lint::Severity::Error).err()
        });
        verdict.clone().map_or(Ok(()), Err)
    }

    /// Clones the model with some activities' firing timings replaced —
    /// the substrate of [`crate::rare`]'s exponential rate tilting. The
    /// structure (places, arcs, gates, declared reads, restart policies)
    /// is untouched; the incidence index is rebuilt against the new
    /// activity table for safety, which reproduces the original bit for
    /// bit because none of its inputs changed.
    pub(crate) fn clone_with_timings(
        &self,
        replace: impl Iterator<Item = (ActivityId, Timing)>,
    ) -> Model {
        let mut activities = self.activities.clone();
        for (id, timing) in replace {
            activities[id.0].timing = timing;
        }
        let incidence = Incidence::build(self.places.len(), &activities);
        Model {
            name: self.name.clone(),
            places: self.places.clone(),
            activities,
            place_index: self.place_index.clone(),
            activity_index: self.activity_index.clone(),
            incidence,
            lint_gate: Arc::new(OnceLock::new()),
        }
    }
}

/// Builder for [`Model`]: declare places, then activities with their arcs,
/// gates and cases, then call [`ModelBuilder::build`].
///
/// Submodels are composed by writing functions that take `&mut ModelBuilder`
/// plus the shared [`PlaceId`]s and add their own scoped places and
/// activities; see [`crate::compose`].
pub struct ModelBuilder {
    name: String,
    places: Vec<PlaceInfo>,
    activities: Vec<Activity>,
    place_index: HashMap<String, PlaceId>,
    activity_index: HashMap<String, ActivityId>,
    scope: Vec<String>,
}

impl fmt::Debug for ModelBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelBuilder")
            .field("name", &self.name)
            .field("places", &self.places.len())
            .field("activities", &self.activities.len())
            .field("scope", &self.scope)
            .finish()
    }
}

impl ModelBuilder {
    /// Creates an empty builder for a model called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            places: Vec::new(),
            activities: Vec::new(),
            place_index: HashMap::new(),
            activity_index: HashMap::new(),
            scope: Vec::new(),
        }
    }

    fn scoped_name(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.scope.join("/"), name)
        }
    }

    /// Pushes a naming scope; subsequent places and activities are named
    /// `scope/…`. Scopes nest.
    pub fn push_scope(&mut self, scope: impl Into<String>) {
        self.scope.push(scope.into());
    }

    /// Pops the innermost naming scope.
    pub fn pop_scope(&mut self) {
        self.scope.pop();
    }

    /// Adds a place with an initial token count, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateName`] if a place with the same scoped
    /// name already exists.
    pub fn add_place(&mut self, name: &str, initial_tokens: u64) -> Result<PlaceId, SanError> {
        let full = self.scoped_name(name);
        if self.place_index.contains_key(&full) {
            return Err(SanError::DuplicateName { name: full });
        }
        let id = PlaceId(self.places.len());
        self.places.push(PlaceInfo { name: full.clone(), initial_tokens });
        self.place_index.insert(full, id);
        Ok(id)
    }

    /// Looks up a place previously added under the given *fully scoped*
    /// name.
    pub fn place(&self, full_name: &str) -> Option<PlaceId> {
        self.place_index.get(full_name).copied()
    }

    /// Changes the initial marking of an existing place.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] if the place does not belong to this
    /// builder.
    pub fn set_initial_tokens(&mut self, place: PlaceId, tokens: u64) -> Result<(), SanError> {
        let info = self
            .places
            .get_mut(place.0)
            .ok_or_else(|| SanError::UnknownId { what: format!("place #{}", place.0) })?;
        info.initial_tokens = tokens;
        Ok(())
    }

    /// Starts a timed activity with a fixed firing distribution.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateName`] if an activity with the same
    /// scoped name already exists.
    pub fn timed_activity(
        &mut self,
        name: &str,
        dist: impl Into<Dist>,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        self.activity_builder(name, Timing::Timed(dist.into()))
    }

    /// Starts a timed activity whose firing distribution is computed from
    /// the marking at activation time.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateName`] if an activity with the same
    /// scoped name already exists.
    pub fn timed_activity_fn(
        &mut self,
        name: &str,
        dist_fn: impl Fn(&Marking) -> Dist + Send + Sync + 'static,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let mut b = self.activity_builder(name, Timing::TimedFn(Arc::new(dist_fn)))?;
        // Marking-dependent distributions must be refreshed when the marking
        // changes, otherwise the sampled delay would reflect a stale rate.
        b.activity.resample_on_change = true;
        Ok(b)
    }

    /// Starts an instantaneous (zero-delay) activity.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::DuplicateName`] if an activity with the same
    /// scoped name already exists.
    pub fn instant_activity(&mut self, name: &str) -> Result<ActivityBuilder<'_>, SanError> {
        self.activity_builder(name, Timing::Instantaneous)
    }

    fn activity_builder(
        &mut self,
        name: &str,
        timing: Timing,
    ) -> Result<ActivityBuilder<'_>, SanError> {
        let full = self.scoped_name(name);
        if self.activity_index.contains_key(&full) {
            return Err(SanError::DuplicateName { name: full });
        }
        Ok(ActivityBuilder {
            builder: self,
            activity: Activity {
                name: full,
                timing,
                input_arcs: Vec::new(),
                input_gates: Vec::new(),
                cases: vec![Case {
                    probability: 1.0,
                    output_arcs: Vec::new(),
                    output_gates: Vec::new(),
                }],
                resample_on_change: false,
                declared_reads: None,
                timing_reads: None,
            },
            explicit_cases: false,
        })
    }

    /// Finalises the model.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if the model has no
    /// activities (nothing to simulate).
    pub fn build(self) -> Result<Model, SanError> {
        if self.activities.is_empty() {
            return Err(SanError::InvalidExperiment { reason: "model has no activities".into() });
        }
        let incidence = Incidence::build(self.places.len(), &self.activities);
        Ok(Model {
            name: self.name,
            places: self.places,
            activities: self.activities,
            place_index: self.place_index,
            activity_index: self.activity_index,
            incidence,
            lint_gate: Arc::new(OnceLock::new()),
        })
    }

    /// Number of places added so far.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of activities added so far.
    pub fn num_activities(&self) -> usize {
        self.activities.len()
    }
}

/// Builder for a single activity; created by the `*_activity` methods on
/// [`ModelBuilder`] and committed with [`ActivityBuilder::build`].
pub struct ActivityBuilder<'a> {
    builder: &'a mut ModelBuilder,
    activity: Activity,
    explicit_cases: bool,
}

impl fmt::Debug for ActivityBuilder<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActivityBuilder").field("activity", &self.activity).finish()
    }
}

impl<'a> ActivityBuilder<'a> {
    /// Adds an input arc: the activity requires (and consumes) `tokens`
    /// tokens from `place`.
    pub fn input_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.activity.input_arcs.push((place, tokens));
        self
    }

    /// Adds an input gate with an enabling `predicate` and a `function`
    /// applied to the marking when the activity fires.
    pub fn input_gate(
        mut self,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
        function: impl Fn(&mut Marking) + Send + Sync + 'static,
    ) -> Self {
        self.activity
            .input_gates
            .push(InputGate { predicate: Arc::new(predicate), function: Arc::new(function) });
        self
    }

    /// Adds an enabling condition with no marking side effect.
    pub fn enabling_predicate(
        self,
        predicate: impl Fn(&Marking) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.input_gate(predicate, |_m| {})
    }

    /// Starts a new probabilistic case with the given probability. Output
    /// arcs and gates added after this call belong to the new case.
    ///
    /// If `case` is never called, the activity has a single implicit case
    /// with probability one.
    pub fn case(mut self, probability: f64) -> Self {
        if !self.explicit_cases {
            // Replace the implicit always-case with the first explicit one.
            self.activity.cases.clear();
            self.explicit_cases = true;
        }
        self.activity.cases.push(Case {
            probability,
            output_arcs: Vec::new(),
            output_gates: Vec::new(),
        });
        self
    }

    /// Adds an output arc to the current case: `tokens` tokens are deposited
    /// into `place` when the activity completes (and this case is chosen).
    pub fn output_arc(mut self, place: PlaceId, tokens: u64) -> Self {
        self.activity
            .cases
            .last_mut()
            .expect("at least one case always exists")
            .output_arcs
            .push((place, tokens));
        self
    }

    /// Adds an output gate to the current case.
    pub fn output_gate(mut self, function: impl Fn(&mut Marking) + Send + Sync + 'static) -> Self {
        self.activity
            .cases
            .last_mut()
            .expect("at least one case always exists")
            .output_gates
            .push(OutputGate { function: Arc::new(function) });
        self
    }

    /// Declares that the activity's input-gate predicates read *only* the
    /// given places (in addition to its input-arc places, which are always
    /// known). Repeated calls accumulate.
    ///
    /// This is a scheduling hint for the event-calendar engine: a
    /// gate-bearing activity without a declaration must be re-examined after
    /// every event (its predicate could read any place), whereas a declared
    /// activity is re-examined only when one of its read places is written.
    /// The declaration is a soundness contract — it must cover **every**
    /// place any of the activity's predicates can read in any marking.
    /// Under-declaring makes the simulator silently miss enabling changes;
    /// the retained reference engine
    /// ([`Simulator::run_reference`](crate::Simulator::run_reference)), which
    /// ignores declarations, exists to catch exactly that in differential
    /// tests. Declarations never change which places a gate may *write*:
    /// writes are tracked exactly at run time through the marking's change
    /// log.
    pub fn enabling_reads(mut self, places: &[PlaceId]) -> Self {
        self.activity.declared_reads.get_or_insert_with(Vec::new).extend_from_slice(places);
        self
    }

    /// Declares that the activity's timing distribution reads *only* the
    /// given places, refining the restart policy of a `resample_on_change`
    /// activity (every [`ModelBuilder::timed_activity_fn`], or a timed
    /// activity that opted into
    /// [`ActivityBuilder::resample_on_marking_change`]): its sampled firing
    /// delay is kept across marking changes unless one of the declared
    /// places is *written* during an event, in which case the delay is
    /// redrawn from the (possibly changed) distribution. Repeated calls
    /// accumulate. Without a declaration the conservative policy applies —
    /// the delay is redrawn after every event.
    ///
    /// Like [`ActivityBuilder::enabling_reads`], this is a soundness
    /// contract: the declaration must cover every place the distribution
    /// function can read in any marking. It also sharpens the stochastic
    /// semantics — keeping a sample whose distribution did not change is the
    /// standard Möbius reactivation rule and is law-equivalent to the
    /// conservative resample for memoryless (exponential) timings, but for
    /// non-memoryless distributions the two policies define different
    /// processes, so declare reads only when "keep unless my inputs
    /// changed" is the semantics you mean. The retained reference kernel
    /// honours declarations identically, keeping differential runs
    /// bit-identical.
    pub fn timing_reads(mut self, places: &[PlaceId]) -> Self {
        self.activity.timing_reads.get_or_insert_with(Vec::new).extend_from_slice(places);
        self
    }

    /// Sets the restart policy: when `true` the activity's sampled firing
    /// time is discarded and resampled whenever the marking changes while it
    /// stays enabled. Activities with marking-dependent timing always
    /// resample.
    pub fn resample_on_marking_change(mut self, resample: bool) -> Self {
        if !matches!(self.activity.timing, Timing::TimedFn(_)) {
            self.activity.resample_on_change = resample;
        }
        self
    }

    /// Commits the activity to the model, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidActivity`] if the activity has neither
    /// inputs nor outputs, or if explicit case probabilities do not sum to
    /// one (within 1e-9) or any probability is negative.
    pub fn build(self) -> Result<ActivityId, SanError> {
        let a = &self.activity;
        let has_effect = !a.input_arcs.is_empty()
            || !a.input_gates.is_empty()
            || a.cases.iter().any(|c| !c.output_arcs.is_empty() || !c.output_gates.is_empty());
        if !has_effect {
            return Err(SanError::InvalidActivity {
                name: a.name.clone(),
                reason: "activity has no input arcs, gates, or outputs".into(),
            });
        }
        for (reads, what) in
            [(&a.declared_reads, "an enabling read"), (&a.timing_reads, "a timing read")]
        {
            if let Some(place) = reads.iter().flatten().find(|p| p.0 >= self.builder.places.len()) {
                return Err(SanError::UnknownId {
                    what: format!("place #{} declared as {what} of activity `{}`", place.0, a.name),
                });
            }
        }
        if self.explicit_cases {
            let total: f64 = a.cases.iter().map(|c| c.probability).sum();
            if a.cases.iter().any(|c| c.probability < 0.0) || (total - 1.0).abs() > 1e-9 {
                return Err(SanError::InvalidActivity {
                    name: a.name.clone(),
                    reason: format!(
                        "case probabilities must be non-negative and sum to 1, got {total}"
                    ),
                });
            }
        }
        let id = ActivityId(self.builder.activities.len());
        self.builder.activity_index.insert(self.activity.name.clone(), id);
        self.builder.activities.push(self.activity);
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdist::{Deterministic, Exponential};

    fn exp(mean: f64) -> Exponential {
        Exponential::from_mean(mean).unwrap()
    }

    #[test]
    fn build_simple_two_place_model() {
        let mut b = ModelBuilder::new("failure-repair");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Deterministic::new(4.0).unwrap())
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.num_places(), 2);
        assert_eq!(m.num_activities(), 2);
        assert_eq!(m.place("up"), Some(up));
        assert_eq!(m.place_name(down), "down");
        assert_eq!(m.activity_name(m.activity("fail").unwrap()), "fail");
        assert_eq!(m.initial_marking().tokens(up), 1);
        assert_eq!(m.place_names().count(), 2);
        assert_eq!(m.activity_names().count(), 2);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = ModelBuilder::new("dup");
        b.add_place("p", 0).unwrap();
        assert!(matches!(b.add_place("p", 1), Err(SanError::DuplicateName { .. })));
        let p = b.place("p").unwrap();
        b.timed_activity("a", exp(1.0)).unwrap().input_arc(p, 1).build().unwrap();
        assert!(matches!(b.timed_activity("a", exp(1.0)), Err(SanError::DuplicateName { .. })));
    }

    #[test]
    fn scoped_names_nest() {
        let mut b = ModelBuilder::new("scoped");
        b.push_scope("oss");
        b.push_scope("pair0");
        let p = b.add_place("up", 1).unwrap();
        b.pop_scope();
        b.pop_scope();
        assert_eq!(b.place("oss/pair0/up"), Some(p));
        assert_eq!(b.place("up"), None);
    }

    #[test]
    fn empty_activity_is_rejected() {
        let mut b = ModelBuilder::new("bad");
        let _p = b.add_place("p", 0).unwrap();
        let res = b.timed_activity("noop", exp(1.0)).unwrap().build();
        assert!(matches!(res, Err(SanError::InvalidActivity { .. })));
    }

    #[test]
    fn case_probabilities_must_sum_to_one() {
        let mut b = ModelBuilder::new("cases");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        let bad = b
            .timed_activity("branch", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .case(0.5)
            .output_arc(q, 1)
            .case(0.2)
            .output_arc(p, 1)
            .build();
        assert!(matches!(bad, Err(SanError::InvalidActivity { .. })));

        let ok = b
            .timed_activity("branch2", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .case(0.5)
            .output_arc(q, 1)
            .case(0.5)
            .output_arc(p, 1)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn model_with_no_activities_is_rejected() {
        let mut b = ModelBuilder::new("empty");
        b.add_place("p", 1).unwrap();
        assert!(matches!(b.build(), Err(SanError::InvalidExperiment { .. })));
    }

    #[test]
    fn enabling_predicate_and_gates_control_enabling() {
        let mut b = ModelBuilder::new("gates");
        let p = b.add_place("p", 2).unwrap();
        let guard = b.add_place("guard", 0).unwrap();
        let a = b
            .timed_activity("consume", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .enabling_predicate(move |m| m.tokens(guard) == 0)
            .build()
            .unwrap();
        let m = b.build().unwrap();
        let activity = m.activity_ref(a);
        let mut marking = m.initial_marking();
        assert!(activity.is_enabled(&marking));
        marking.add_tokens(guard, 1);
        assert!(!activity.is_enabled(&marking));
        marking.set_tokens(guard, 0);
        marking.set_tokens(p, 0);
        assert!(!activity.is_enabled(&marking));
    }

    #[test]
    fn set_initial_tokens_updates_marking() {
        let mut b = ModelBuilder::new("init");
        let p = b.add_place("p", 1).unwrap();
        b.set_initial_tokens(p, 7).unwrap();
        assert!(b.set_initial_tokens(PlaceId(99), 1).is_err());
        b.timed_activity("a", exp(1.0)).unwrap().input_arc(p, 1).build().unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.initial_marking().tokens(p), 7);
    }

    #[test]
    fn timing_debug_formats() {
        assert_eq!(format!("{:?}", Timing::Instantaneous), "Instantaneous");
        let t = Timing::Timed(exp(1.0).into());
        assert!(format!("{t:?}").contains("exponential"));
    }
}
