//! Replicate/Join composition helpers.
//!
//! Möbius composes large models from small submodels with two operators:
//!
//! * **Join** — submodels are placed side by side and *share* selected state
//!   variables (places).
//! * **Replicate** — a submodel is instantiated `N` times, each replica
//!   getting private copies of its places except for the shared ones.
//!
//! In this crate a submodel is simply a function that adds places and
//! activities to a [`ModelBuilder`], receiving the shared [`crate::PlaceId`]s as
//! arguments and returning whatever handles (place ids, activity ids) the
//! caller needs. Because every submodel works on the same builder and the
//! same place-id namespace, "sharing a place" is just passing the same
//! `PlaceId` to several submodel functions — exactly the semantics of a
//! Möbius join.
//!
//! [`replicate`] adds the replicate operator: it instantiates a submodel
//! function `N` times under distinct naming scopes (`name[0]`, `name[1]`, …)
//! and collects the per-replica handles.
//!
//! # Composition and the event-calendar scheduler
//!
//! Composition is where dependency declarations
//! ([`crate::ActivityBuilder::enabling_reads`] /
//! [`crate::ActivityBuilder::timing_reads`]) pay off most: in a model with
//! `N` replicas, a replica's gate predicates typically read only its own
//! scoped places (plus a few shared ones), so declaring them lets the
//! event-calendar engine skip the other `N − 1` replicas entirely when one
//! replica's state changes — per-event cost stays flat as the composition
//! grows. Declarations must cover shared places too: a predicate that reads
//! a joined place (e.g. a shared spare pool or a global failure counter)
//! must list it, or other submodels' writes to it would be missed. When in
//! doubt, declare nothing — undeclared gates fall back to conservative
//! re-examination after every event, which is always sound.
//!
//! # Example
//!
//! ```
//! use sanet::{ModelBuilder, compose::replicate};
//! use probdist::Exponential;
//!
//! # fn main() -> Result<(), sanet::SanError> {
//! let mut b = ModelBuilder::new("cluster");
//! // A shared place joined across all replicas.
//! let failures = b.add_place("failures", 0)?;
//!
//! // Replicate a simple failing server 4 times.
//! let servers = replicate(&mut b, "server", 4, |b, _i| {
//!     let up = b.add_place("up", 1)?;
//!     b.timed_activity("fail", Exponential::from_mean(1000.0).unwrap())?
//!         .input_arc(up, 1)
//!         .output_arc(failures, 1)
//!         .build()?;
//!     Ok(up)
//! })?;
//! assert_eq!(servers.len(), 4);
//! assert!(b.place("server[2]/up").is_some());
//! # Ok(())
//! # }
//! ```

use crate::{ModelBuilder, SanError};

/// Instantiates a submodel `count` times, each under its own naming scope
/// `name[i]`, and returns the handles produced by each instantiation.
///
/// # Errors
///
/// Propagates any error returned by the submodel function (duplicate names,
/// invalid activities, …).
pub fn replicate<T>(
    builder: &mut ModelBuilder,
    name: &str,
    count: usize,
    mut submodel: impl FnMut(&mut ModelBuilder, usize) -> Result<T, SanError>,
) -> Result<Vec<T>, SanError> {
    let mut handles = Vec::with_capacity(count);
    for i in 0..count {
        builder.push_scope(format!("{name}[{i}]"));
        let result = submodel(builder, i);
        builder.pop_scope();
        handles.push(result?);
    }
    Ok(handles)
}

/// Adds a single submodel under a naming scope — the join operator with an
/// explicit name. Equivalent to `push_scope`/`pop_scope` around the call,
/// provided for symmetry with [`replicate`].
///
/// # Errors
///
/// Propagates any error returned by the submodel function.
pub fn join<T>(
    builder: &mut ModelBuilder,
    name: &str,
    submodel: impl FnOnce(&mut ModelBuilder) -> Result<T, SanError>,
) -> Result<T, SanError> {
    builder.push_scope(name.to_string());
    let result = submodel(builder);
    builder.pop_scope();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::Experiment;
    use probdist::{Deterministic, Exponential};

    #[test]
    fn replicate_creates_scoped_copies() {
        let mut b = ModelBuilder::new("c");
        let shared = b.add_place("shared", 0).unwrap();
        let ups = replicate(&mut b, "unit", 3, |b, i| {
            let up = b.add_place("up", 1)?;
            b.timed_activity("fail", Exponential::from_mean(10.0 * (i + 1) as f64).unwrap())?
                .input_arc(up, 1)
                .output_arc(shared, 1)
                .build()?;
            Ok(up)
        })
        .unwrap();
        assert_eq!(ups.len(), 3);
        assert!(b.place("unit[0]/up").is_some());
        assert!(b.place("unit[2]/up").is_some());
        assert!(b.place("unit[3]/up").is_none());
        let model = b.build().unwrap();
        assert_eq!(model.num_places(), 4);
        assert_eq!(model.num_activities(), 3);
        assert!(model.activity("unit[1]/fail").is_some());
    }

    #[test]
    fn replicate_propagates_submodel_errors() {
        let mut b = ModelBuilder::new("c");
        let result = replicate(&mut b, "unit", 2, |b, _i| {
            // Every replica tries to create the same *unscoped* global name
            // by popping the scope first — the second replica must fail.
            b.pop_scope();
            let p = b.add_place("clash", 0)?;
            b.push_scope("dummy".to_string());
            Ok(p)
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_scopes_a_single_submodel() {
        let mut b = ModelBuilder::new("c");
        let up = join(&mut b, "oss", |b| {
            let up = b.add_place("up", 1)?;
            b.timed_activity("fail", Exponential::from_mean(100.0).unwrap())?
                .input_arc(up, 1)
                .build()?;
            Ok(up)
        })
        .unwrap();
        assert!(b.place("oss/up").is_some());
        assert_eq!(b.place("oss/up"), Some(up));
    }

    #[test]
    fn shared_place_joins_replicas() {
        // Three units fail deterministically at t = 1, 2, 3 into a shared
        // failure counter; a collector model reads the shared place.
        let mut b = ModelBuilder::new("joined");
        let failures = b.add_place("failures", 0).unwrap();
        replicate(&mut b, "unit", 3, |b, i| {
            let up = b.add_place("up", 1)?;
            b.timed_activity("fail", Deterministic::new((i + 1) as f64).unwrap())?
                .input_arc(up, 1)
                .output_arc(failures, 1)
                .build()?;
            Ok(up)
        })
        .unwrap();
        let model = b.build().unwrap();
        let mut exp = Experiment::new(model, 10.0);
        exp.add_reward(RewardSpec::instant_of_time("failures", move |m| m.tokens(failures) as f64));
        exp.set_parallel(false);
        let summary = exp.run(2, 1).unwrap();
        assert_eq!(summary.reward("failures").unwrap().interval.point, 3.0);
    }
}
