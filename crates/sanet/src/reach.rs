//! Reachability and solver-admissibility analysis: the semantic
//! static-analysis tier over compiled models.
//!
//! [`lint`](crate::lint) answers *declaration and structure* questions
//! (are the closure read sets sound, is an activity dead, do the arcs
//! conserve tokens); this module answers *state-space* questions by
//! exhaustively exploring the reachable marking graph from the initial
//! marking under a configurable budget ([`ReachConfig`]):
//!
//! * **Boundedness** — the maximum token count observed per place, plus
//!   budget-exhaustion reporting naming the fastest-growing places when
//!   the model looks unbounded (diagnostic `SAN040`).
//! * **Ergodicity** — strongly-connected-component condensation of the
//!   marking graph classifying terminal (recurrent) classes, transient
//!   markings, and absorbing dead ends (`SAN041`, `SAN043`).
//! * **Timing classification** — whether every timed activity is
//!   exponential in every reachable marking (marking-dependent timings are
//!   evaluated per tangible marking), with the offenders named (`SAN042`) —
//!   the reason a model is simulation-only, not just the verdict.
//! * **Sparse generator assembly** — for admissible models, the exact CTMC
//!   generator over the tangible markings (vanishing markings eliminated
//!   through their instantaneous-case probabilities) as a
//!   [`SparseCtmc`], ready for
//!   `steady_state`/`transient` solving without simulation.
//!
//! Entry points: [`Model::analyze`](crate::Model::analyze) /
//! [`Model::analyze_with`](crate::Model::analyze_with) return a
//! [`ReachReport`]; [`ReachReport::to_lint_report`] renders the `SAN04x`
//! diagnostics through the standard [`LintReport`] machinery; and
//! [`ReachReport::assemble_generator`] builds the solvable chain.
//!
//! # Exploration semantics
//!
//! The engine gives instantaneous activities priority over timed ones and
//! fires an enabled cascade lowest activity index first. The explorer
//! mirrors this exactly: a marking with any enabled instantaneous activity
//! is *vanishing* and expands only through the lowest-indexed enabled
//! instantaneous activity (one successor per positive-probability case);
//! a *tangible* marking expands through **every** enabled timed activity
//! in ascending index order. Expanding every timed activity ignores the
//! timing race, so the computed set is a superset of any single run's
//! visited markings — exact for reachability (any enabled activity can win
//! the race with positive probability under exponential timings), and safe
//! (never under-approximating) for boundedness and containment checks.
//! Cases with probability `0` are not expanded: the engine's cumulative
//! scan cannot select them outside a `≤ 1e-9` rounding gap.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use probdist::Dist;

use crate::ctmc::SparseCtmc;
use crate::engine::TraceEvent;
use crate::error::SanError;
use crate::lint::{codes, Diagnostic, LintReport, Severity};
use crate::marking::{Marking, PlaceId};
use crate::model::{Activity, Model, Timing};

/// Budget and policy knobs for [`Model::analyze_with`](crate::Model::analyze_with).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachConfig {
    /// Maximum number of distinct markings to intern before declaring the
    /// exploration incomplete (`SAN040`).
    pub max_states: usize,
    /// Maximum number of marking-graph edges to record before declaring
    /// the exploration incomplete.
    pub max_transitions: usize,
    /// Whether the analysis should treat non-ergodic structure (transient
    /// markings or multiple terminal classes) as a warning (`SAN041` at
    /// [`Severity::Warning`]) instead of an informational note. Set it when
    /// a steady-state reward over the whole space is the intended use.
    pub assume_ergodic: bool,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig { max_states: 20_000, max_transitions: 250_000, assume_ergodic: false }
    }
}

/// Whether a model can be handed to the analytic (CTMC) solver tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverAdmissibility {
    /// The reachable state space is finite (fully explored), every timed
    /// activity is exponential in every reachable marking, the
    /// instantaneous activities form no cycle, and exactly one terminal
    /// class exists — the generator can be assembled and solved exactly.
    Analytic,
    /// The model must be simulated; each reason names what blocks the
    /// analytic path (budget exhaustion, the offending non-exponential
    /// activities, vanishing loops, or multi-class structure).
    SimulationOnly(Vec<String>),
}

impl SolverAdmissibility {
    /// Whether the analytic tier applies.
    pub fn is_analytic(&self) -> bool {
        matches!(self, SolverAdmissibility::Analytic)
    }

    /// The simulation-only reasons (empty for [`SolverAdmissibility::Analytic`]).
    pub fn reasons(&self) -> &[String] {
        match self {
            SolverAdmissibility::Analytic => &[],
            SolverAdmissibility::SimulationOnly(reasons) => reasons,
        }
    }
}

/// A timed activity that is not exponential in some reachable marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingOffender {
    /// Activity name.
    pub activity: String,
    /// Distribution family observed (`"weibull"`, `"deterministic"`, …) or
    /// `"panicked"` if the timing closure panicked during evaluation.
    pub family: String,
    /// Rendered marking the non-exponential distribution was observed in,
    /// for marking-dependent timings (`None` for fixed distributions).
    pub marking: Option<String>,
}

/// SCC/condensation classification of a completely explored marking graph.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SccSummary {
    /// Number of strongly connected components.
    components: usize,
    /// Number of terminal (no outgoing inter-component edge) classes.
    terminal_classes: usize,
    /// Number of markings outside every terminal class.
    transient_states: usize,
}

/// The eliminated (tangible-only) generator, retained when the model is
/// admissible so [`ReachReport::assemble_generator`] does not re-explore.
#[derive(Debug, Clone)]
struct GeneratorData {
    /// Tangible markings in CTMC state order.
    states: Vec<Vec<u64>>,
    /// Aggregated `(from, to, rate)` entries, self-loops eliminated.
    triplets: Vec<(usize, usize, f64)>,
    /// Distribution over tangible states the initial marking resolves to.
    initial: Vec<(usize, f64)>,
}

/// The statically assembled analytic form of an admissible model.
#[derive(Debug, Clone)]
pub struct GeneratorAssembly {
    /// The sparse CTMC over the tangible markings.
    pub ctmc: SparseCtmc,
    /// Tangible markings (token vectors) in CTMC state order.
    pub states: Vec<Vec<u64>>,
    /// Initial distribution over CTMC states: the initial marking itself
    /// when tangible, or the case-probability-weighted tangible successors
    /// of its instantaneous cascade when vanishing.
    pub initial: Vec<(usize, f64)>,
}

impl GeneratorAssembly {
    /// Index of the tangible marking equal to `tokens`, if reachable.
    pub fn state_index(&self, tokens: &[u64]) -> Option<usize> {
        self.states.iter().position(|s| s == tokens)
    }
}

/// One marking-graph edge (successor plus weight).
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: u32,
    /// Case probability for edges out of vanishing markings; `rate × case
    /// probability` for edges out of tangible markings (NaN when the
    /// source activity is not exponential — such graphs are never
    /// assembled).
    weight: f64,
}

/// The result of exploring a model's reachable marking graph.
///
/// Self-contained: place/activity names are captured at analysis time, so
/// the report can be rendered, serialised, and queried without the model.
#[derive(Debug, Clone)]
pub struct ReachReport {
    model: String,
    config: ReachConfig,
    place_names: Vec<String>,
    markings: Vec<Vec<u64>>,
    index: HashMap<Vec<u64>, u32>,
    vanishing: Vec<bool>,
    edges: Vec<Vec<Edge>>,
    transitions: usize,
    complete: bool,
    place_bounds: Vec<u64>,
    dead_ends: Vec<u32>,
    offenders: Vec<TimingOffender>,
    instant_loop: bool,
    scc: Option<SccSummary>,
    admissibility: SolverAdmissibility,
    generator: Option<GeneratorData>,
}

impl ReachReport {
    /// Name of the analysed model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The budget the analysis ran under.
    pub fn config(&self) -> &ReachConfig {
        &self.config
    }

    /// Number of distinct reachable markings discovered (tangible plus
    /// vanishing; a lower bound when the exploration is incomplete).
    pub fn num_states(&self) -> usize {
        self.markings.len()
    }

    /// Number of tangible (timed-expansion) markings discovered.
    pub fn num_tangible(&self) -> usize {
        self.vanishing.iter().filter(|&&v| !v).count()
    }

    /// Number of vanishing (instantaneous-priority) markings discovered.
    pub fn num_vanishing(&self) -> usize {
        self.vanishing.iter().filter(|&&v| v).count()
    }

    /// Number of marking-graph edges recorded.
    pub fn num_transitions(&self) -> usize {
        self.transitions
    }

    /// Whether the exploration visited the entire reachable set (`false`
    /// when a [`ReachConfig`] budget was exhausted).
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// Maximum token count observed in `place` over the explored markings.
    pub fn place_bound(&self, place: PlaceId) -> u64 {
        self.place_bounds.get(place.index()).copied().unwrap_or(0)
    }

    /// Maximum observed token count per place, indexed like the model.
    pub fn place_bounds(&self) -> &[u64] {
        &self.place_bounds
    }

    /// Number of reachable dead-end markings (no activity enabled at all).
    pub fn num_dead_ends(&self) -> usize {
        self.dead_ends.len()
    }

    /// The timed activities that are not exponential in some reachable
    /// marking, deduplicated by activity.
    pub fn timing_offenders(&self) -> &[TimingOffender] {
        &self.offenders
    }

    /// Whether every timed activity is exponential in every explored
    /// tangible marking.
    pub fn all_exponential(&self) -> bool {
        self.offenders.is_empty()
    }

    /// Whether the marking graph is irreducible (one strongly connected
    /// component — ergodic under exponential timings). `false` when the
    /// exploration is incomplete.
    pub fn is_ergodic(&self) -> bool {
        self.scc.as_ref().is_some_and(|s| s.components == 1)
    }

    /// Number of terminal (recurrent) classes, when fully explored.
    pub fn terminal_classes(&self) -> Option<usize> {
        self.scc.as_ref().map(|s| s.terminal_classes)
    }

    /// Number of transient markings (outside every terminal class), when
    /// fully explored.
    pub fn transient_states(&self) -> Option<usize> {
        self.scc.as_ref().map(|s| s.transient_states)
    }

    /// The solver-admissibility verdict with its reasons.
    pub fn admissibility(&self) -> &SolverAdmissibility {
        &self.admissibility
    }

    /// Whether `tokens` is one of the explored reachable markings.
    pub fn contains_tokens(&self, tokens: &[u64]) -> bool {
        self.index.contains_key(tokens)
    }

    /// Whether `marking` is one of the explored reachable markings.
    pub fn contains(&self, marking: &Marking) -> bool {
        self.contains_tokens(marking.as_slice())
    }

    /// The explored markings as token vectors, in discovery (BFS) order;
    /// index 0 is the initial marking.
    pub fn markings(&self) -> impl Iterator<Item = &[u64]> {
        self.markings.iter().map(Vec::as_slice)
    }

    /// Successor marking indices of the explored marking at `state`
    /// (discovery order), for walking the raw marking graph.
    pub fn successors(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.get(state).map_or(&[][..], Vec::as_slice).iter().map(|e| e.to as usize)
    }

    /// Whether the instantaneous activities form a cycle of vanishing
    /// markings (an unstable zero-delay loop the engine would reject at
    /// run time). Only detectable when the exploration is complete.
    pub fn has_unstable_instant_loop(&self) -> bool {
        self.instant_loop
    }

    /// Builds the sparse CTMC generator over the tangible markings.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::NotAnalytic`] (with the same reasons as
    /// [`ReachReport::admissibility`]) unless the verdict is
    /// [`SolverAdmissibility::Analytic`].
    pub fn assemble_generator(&self) -> Result<GeneratorAssembly, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanGeneratorAssembly);
        let Some(data) = &self.generator else {
            return Err(SanError::NotAnalytic {
                model: self.model.clone(),
                reasons: self.admissibility.reasons().to_vec(),
            });
        };
        let mut ctmc = SparseCtmc::new(data.states.len())?;
        for &(from, to, rate) in &data.triplets {
            ctmc.add_transition(from, to, rate)?;
        }
        Ok(GeneratorAssembly { ctmc, states: data.states.clone(), initial: data.initial.clone() })
    }

    /// Renders the `SAN04x` diagnostics as a standard [`LintReport`]
    /// (sorted, deniable, serialisable like every other lint result).
    ///
    /// Severity policy: `SAN044` (size report) is always Info. `SAN040`
    /// (budget exhausted / suspected unbounded) is a Warning only when the
    /// model is otherwise all-exponential — i.e. when unboundedness is the
    /// one thing blocking an analytic solve — and Info when simulation is
    /// required anyway. `SAN041` (non-ergodic structure) is a Warning only
    /// under [`ReachConfig::assume_ergodic`]. `SAN042` names each
    /// non-exponential activity at Info: general distributions are a
    /// deliberate modelling choice, and the simulation tier handles them.
    /// `SAN043` (reachable dead-end marking) is always a Warning.
    pub fn to_lint_report(&self) -> LintReport {
        let mut diagnostics = Vec::new();

        let exploration = if self.complete {
            "exploration complete".to_string()
        } else {
            format!(
                "budget exhausted (max_states {}, max_transitions {})",
                self.config.max_states, self.config.max_transitions
            )
        };
        diagnostics.push(Diagnostic::new(
            codes::STATE_SPACE_SIZE,
            Severity::Info,
            "state-space",
            format!(
                "{} marking(s) ({} tangible, {} vanishing), {} transition(s); {exploration}",
                self.num_states(),
                self.num_tangible(),
                self.num_vanishing(),
                self.transitions,
            ),
        ));

        if !self.complete {
            let severity =
                if self.offenders.is_empty() { Severity::Warning } else { Severity::Info };
            let mut growing: Vec<(usize, u64)> =
                self.place_bounds.iter().copied().enumerate().collect();
            growing.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let suspects: Vec<String> = growing
                .iter()
                .take(3)
                .filter(|&&(_, bound)| bound >= 2)
                .map(|&(p, bound)| format!("{}={bound}", self.place_names[p]))
                .collect();
            let element =
                growing.first().map_or("state-space", |&(p, _)| self.place_names[p].as_str());
            diagnostics.push(Diagnostic::new(
                codes::UNBOUNDED_SUSPECT,
                severity,
                element,
                format!(
                    "exploration stopped at {} marking(s) without exhausting the reachable set; \
                     the model may be unbounded — largest observed place bounds: {}",
                    self.num_states(),
                    suspects.join(", "),
                ),
            ));
        }

        if let Some(scc) = &self.scc {
            if scc.components > 1 {
                let severity =
                    if self.config.assume_ergodic { Severity::Warning } else { Severity::Info };
                diagnostics.push(Diagnostic::new(
                    codes::NON_ERGODIC,
                    severity,
                    "state-space",
                    format!(
                        "non-ergodic structure: {} terminal class(es), {} transient marking(s) — \
                         steady-state measures ignore the transient part{}",
                        scc.terminal_classes,
                        scc.transient_states,
                        if scc.terminal_classes > 1 {
                            " and depend on the initial marking"
                        } else {
                            ""
                        },
                    ),
                ));
            }
        }

        for offender in &self.offenders {
            let context = offender
                .marking
                .as_ref()
                .map_or_else(String::new, |m| format!(" (observed in marking {m})"));
            diagnostics.push(Diagnostic::new(
                codes::NON_EXPONENTIAL_TIMING,
                Severity::Info,
                &offender.activity,
                format!(
                    "{} timing blocks analytic solving{context}; the model is simulation-only",
                    offender.family,
                ),
            ));
        }

        for &state in self.dead_ends.iter().take(5) {
            diagnostics.push(Diagnostic::new(
                codes::DEAD_END_MARKING,
                Severity::Warning,
                render_marking(&self.place_names, &self.markings[state as usize]),
                "reachable dead-end marking: no activity is enabled, the model halts here",
            ));
        }
        if self.dead_ends.len() > 5 {
            diagnostics.push(Diagnostic::new(
                codes::DEAD_END_MARKING,
                Severity::Warning,
                "state-space",
                format!("{} further dead-end marking(s) elided", self.dead_ends.len() - 5),
            ));
        }

        LintReport::from_parts(self.model.clone(), 0, diagnostics)
    }
}

/// Renders the non-zero places of a marking compactly: `working=2, armed=1`
/// (or `<empty>` for the all-zero marking).
fn render_marking(place_names: &[String], tokens: &[u64]) -> String {
    let parts: Vec<String> = tokens
        .iter()
        .enumerate()
        .filter(|&(_, &n)| n > 0)
        .map(|(p, &n)| format!("{}={n}", place_names[p]))
        .collect();
    if parts.is_empty() {
        "<empty>".to_string()
    } else {
        parts.join(", ")
    }
}

/// Applies one activity completion with a forced case choice — the
/// deterministic mirror of the engine's `fire_activity` (input arcs, input
/// gate functions, the chosen case's output arcs, then its output gates).
fn fire_case(activity: &Activity, case: usize, from: &Marking) -> Marking {
    let mut marking = Marking::new(from.as_slice().to_vec());
    for &(place, tokens) in &activity.input_arcs {
        marking.remove_tokens(place, tokens);
    }
    for gate in &activity.input_gates {
        (gate.function)(&mut marking);
    }
    let case = &activity.cases[case];
    for &(place, tokens) in &case.output_arcs {
        marking.add_tokens(place, tokens);
    }
    for gate in &case.output_gates {
        (gate.function)(&mut marking);
    }
    marking
}

/// Deterministically replays a recorded trace from the model's initial
/// marking, returning every visited marking as a token vector — the
/// initial marking first, then the marking after each completion
/// (instantaneous firings included, since [`Simulator::run_traced`]
/// records them).
///
/// Used by the differential suites: every replayed marking must be
/// contained in a complete [`ReachReport`] of the same model.
///
/// [`Simulator::run_traced`]: crate::Simulator::run_traced
pub fn replay_markings(model: &Model, trace: &[TraceEvent]) -> Vec<Vec<u64>> {
    let mut marking = model.initial_marking();
    let mut visited = Vec::with_capacity(trace.len() + 1);
    visited.push(marking.as_slice().to_vec());
    for event in trace {
        marking = fire_case(model.activity_ref(event.activity), event.case, &marking);
        visited.push(marking.as_slice().to_vec());
    }
    visited
}

/// Evaluates the firing rate of a timed activity in `marking`, recording a
/// [`TimingOffender`] (once per activity) when it is not exponential.
fn classify_rate(
    activity: &Activity,
    marking: &Marking,
    place_names: &[String],
    offenders: &mut HashMap<String, TimingOffender>,
) -> f64 {
    let record = |offenders: &mut HashMap<String, TimingOffender>,
                  family: String,
                  context: Option<String>| {
        offenders.entry(activity.name.clone()).or_insert_with(|| TimingOffender {
            activity: activity.name.clone(),
            family,
            marking: context,
        });
    };
    match &activity.timing {
        Timing::Instantaneous => f64::NAN,
        Timing::Timed(Dist::Exponential(e)) => e.rate(),
        Timing::Timed(dist) => {
            record(offenders, dist.family().to_string(), None);
            f64::NAN
        }
        Timing::TimedFn(timing) => match catch_unwind(AssertUnwindSafe(|| timing(marking))) {
            Ok(Dist::Exponential(e)) => e.rate(),
            Ok(dist) => {
                record(
                    offenders,
                    format!("marking-dependent {}", dist.family()),
                    Some(render_marking(place_names, marking.as_slice())),
                );
                f64::NAN
            }
            Err(_) => {
                record(
                    offenders,
                    "panicking marking-dependent".to_string(),
                    Some(render_marking(place_names, marking.as_slice())),
                );
                f64::NAN
            }
        },
    }
}

/// Iterative Tarjan SCC over the explored graph; returns the component id
/// of each state plus the component count (ids in reverse topological
/// order of discovery — only membership and counts are used).
fn strongly_connected_components(edges: &[Vec<Edge>]) -> (Vec<u32>, usize) {
    let n = edges.len();
    let mut component = vec![u32::MAX; n];
    let mut index = vec![u32::MAX; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut components = 0usize;
    // Explicit DFS frames: (state, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != u32::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vi = v as usize;
            if *child == 0 {
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(edge) = edges[vi].get(*child) {
                *child += 1;
                let w = edge.to as usize;
                if index[w] == u32::MAX {
                    frames.push((edge.to, 0));
                } else if on_stack[w] {
                    lowlink[vi] = lowlink[vi].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    let id = components as u32;
                    components += 1;
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        component[w as usize] = id;
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    (component, components)
}

/// Classifies the condensation: terminal classes and transient states.
fn classify_sccs(edges: &[Vec<Edge>], component: &[u32], components: usize) -> SccSummary {
    let mut terminal = vec![true; components];
    for (v, out) in edges.iter().enumerate() {
        for edge in out {
            if component[v] != component[edge.to as usize] {
                terminal[component[v] as usize] = false;
            }
        }
    }
    let transient_states = component.iter().filter(|&&c| !terminal[c as usize]).count();
    SccSummary {
        components,
        terminal_classes: terminal.iter().filter(|&&t| t).count(),
        transient_states,
    }
}

/// Detects a cycle restricted to vanishing markings (an unstable
/// instantaneous loop) by three-colour DFS over the vanishing subgraph.
fn has_vanishing_cycle(edges: &[Vec<Edge>], vanishing: &[bool]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Colour {
        White,
        Grey,
        Black,
    }
    let mut colour = vec![Colour::White; edges.len()];
    for root in 0..edges.len() {
        if !vanishing[root] || colour[root] != Colour::White {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        colour[root] = Colour::Grey;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let next = edges[v][*child..]
                .iter()
                .position(|e| vanishing[e.to as usize])
                .map(|offset| *child + offset);
            if let Some(pos) = next {
                *child = pos + 1;
                let w = edges[v][pos].to as usize;
                match colour[w] {
                    Colour::Grey => return true,
                    Colour::White => {
                        colour[w] = Colour::Grey;
                        frames.push((w, 0));
                    }
                    Colour::Black => {}
                }
            } else {
                colour[v] = Colour::Black;
                frames.pop();
            }
        }
    }
    false
}

/// Eliminates the vanishing markings: resolves each to its distribution
/// over tangible markings through the instantaneous-case probabilities,
/// then aggregates the tangible-to-tangible rates. Fails on a vanishing
/// cycle (which [`has_vanishing_cycle`] should already have caught).
fn eliminate_vanishing(
    markings: &[Vec<u64>],
    vanishing: &[bool],
    edges: &[Vec<Edge>],
) -> Result<GeneratorData, String> {
    // Tangible states keep discovery order.
    let mut tangible_index = vec![usize::MAX; markings.len()];
    let mut states = Vec::new();
    for (s, tokens) in markings.iter().enumerate() {
        if !vanishing[s] {
            tangible_index[s] = states.len();
            states.push(tokens.clone());
        }
    }

    // Memoized resolution of a vanishing state to tangible probabilities.
    let mut resolved: HashMap<u32, Vec<(usize, f64)>> = HashMap::new();
    fn resolve(
        state: u32,
        vanishing: &[bool],
        edges: &[Vec<Edge>],
        tangible_index: &[usize],
        resolved: &mut HashMap<u32, Vec<(usize, f64)>>,
        on_stack: &mut Vec<u32>,
    ) -> Result<Vec<(usize, f64)>, String> {
        if let Some(hit) = resolved.get(&state) {
            return Ok(hit.clone());
        }
        if on_stack.contains(&state) {
            return Err("instantaneous activities form a cycle of vanishing markings".to_string());
        }
        on_stack.push(state);
        let mut acc: HashMap<usize, f64> = HashMap::new();
        for edge in &edges[state as usize] {
            let target = edge.to as usize;
            if vanishing[target] {
                for (t, p) in
                    resolve(edge.to, vanishing, edges, tangible_index, resolved, on_stack)?
                {
                    *acc.entry(t).or_insert(0.0) += edge.weight * p;
                }
            } else {
                *acc.entry(tangible_index[target]).or_insert(0.0) += edge.weight;
            }
        }
        on_stack.pop();
        let mut dist: Vec<(usize, f64)> = acc.into_iter().collect();
        dist.sort_unstable_by_key(|&(t, _)| t);
        resolved.insert(state, dist.clone());
        Ok(dist)
    }

    let mut rates: HashMap<(usize, usize), f64> = HashMap::new();
    for (s, out) in edges.iter().enumerate() {
        if vanishing[s] {
            continue;
        }
        let from = tangible_index[s];
        for edge in out {
            let target = edge.to as usize;
            if vanishing[target] {
                for (t, p) in resolve(
                    edge.to,
                    vanishing,
                    edges,
                    &tangible_index,
                    &mut resolved,
                    &mut Vec::new(),
                )? {
                    if t != from {
                        *rates.entry((from, t)).or_insert(0.0) += edge.weight * p;
                    }
                }
            } else if tangible_index[target] != from {
                *rates.entry((from, tangible_index[target])).or_insert(0.0) += edge.weight;
            }
        }
    }
    let mut triplets: Vec<(usize, usize, f64)> =
        rates.into_iter().map(|((f, t), r)| (f, t, r)).collect();
    triplets.sort_unstable_by_key(|&(f, t, _)| (f, t));

    let initial = if vanishing[0] {
        resolve(0, vanishing, edges, &tangible_index, &mut resolved, &mut Vec::new())?
    } else {
        vec![(tangible_index[0], 1.0)]
    };

    Ok(GeneratorData { states, triplets, initial })
}

/// Explores the reachable marking graph of `model` under `config` — the
/// implementation behind [`Model::analyze_with`](crate::Model::analyze_with).
pub(crate) fn explore(model: &Model, config: &ReachConfig) -> ReachReport {
    let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReachExplore);
    let activities = model.activities();
    let place_names: Vec<String> = model.place_names().map(str::to_string).collect();
    let instants: Vec<usize> = (0..activities.len())
        .filter(|&a| matches!(activities[a].timing, Timing::Instantaneous))
        .collect();
    let timed: Vec<usize> = (0..activities.len())
        .filter(|&a| !matches!(activities[a].timing, Timing::Instantaneous))
        .collect();

    let initial = model.initial_marking().as_slice().to_vec();
    let mut place_bounds = initial.clone();
    let mut markings = vec![initial.clone()];
    let mut index = HashMap::from([(initial, 0u32)]);
    let mut vanishing = vec![false];
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new()];
    let mut frontier = VecDeque::from([0u32]);
    let mut transitions = 0usize;
    let mut complete = true;
    let mut dead_ends = Vec::new();
    let mut offender_map: HashMap<String, TimingOffender> = HashMap::new();

    'explore: while let Some(state) = frontier.pop_front() {
        let marking = Marking::new(markings[state as usize].clone());

        // Instantaneous priority: a vanishing marking expands only through
        // the lowest-indexed enabled instantaneous activity.
        let instant = instants.iter().copied().find(|&a| activities[a].is_enabled(&marking));
        let mut successors: Vec<Edge> = Vec::new();
        if let Some(a) = instant {
            vanishing[state as usize] = true;
            let activity = &activities[a];
            for (case, spec) in activity.cases.iter().enumerate() {
                if spec.probability <= 0.0 {
                    continue;
                }
                let next = fire_case(activity, case, &marking);
                match intern(
                    next.as_slice(),
                    &mut markings,
                    &mut index,
                    &mut vanishing,
                    &mut edges,
                    &mut place_bounds,
                    &mut frontier,
                    config,
                ) {
                    Some(id) => successors.push(Edge { to: id, weight: spec.probability }),
                    None => {
                        complete = false;
                        break 'explore;
                    }
                }
            }
        } else {
            let mut any_enabled = false;
            for &a in &timed {
                let activity = &activities[a];
                if !activity.is_enabled(&marking) {
                    continue;
                }
                any_enabled = true;
                let rate = classify_rate(activity, &marking, &place_names, &mut offender_map);
                for (case, spec) in activity.cases.iter().enumerate() {
                    if spec.probability <= 0.0 {
                        continue;
                    }
                    let next = fire_case(activity, case, &marking);
                    match intern(
                        next.as_slice(),
                        &mut markings,
                        &mut index,
                        &mut vanishing,
                        &mut edges,
                        &mut place_bounds,
                        &mut frontier,
                        config,
                    ) {
                        Some(id) => {
                            successors.push(Edge { to: id, weight: rate * spec.probability });
                        }
                        None => {
                            complete = false;
                            break 'explore;
                        }
                    }
                }
            }
            if !any_enabled {
                dead_ends.push(state);
            }
        }

        if transitions + successors.len() > config.max_transitions {
            complete = false;
            break;
        }
        transitions += successors.len();
        edges[state as usize] = successors;
    }

    let mut offenders: Vec<TimingOffender> = offender_map.into_values().collect();
    offenders.sort_by(|a, b| a.activity.cmp(&b.activity));

    let (scc, instant_loop) = if complete {
        let (component, components) = strongly_connected_components(&edges);
        (
            Some(classify_sccs(&edges, &component, components)),
            has_vanishing_cycle(&edges, &vanishing),
        )
    } else {
        (None, false)
    };

    // Admissibility verdict, then (only for admissible models) the
    // eliminated generator.
    let mut reasons = Vec::new();
    if !complete {
        reasons.push(format!(
            "state-space exploration exhausted its budget ({} markings, {} transitions explored)",
            markings.len(),
            transitions,
        ));
    }
    for offender in offenders.iter().take(8) {
        let context =
            offender.marking.as_ref().map_or_else(String::new, |m| format!(" in marking {m}"));
        reasons.push(format!(
            "activity '{}' has {} timing{context}",
            offender.activity, offender.family,
        ));
    }
    if offenders.len() > 8 {
        reasons.push(format!("{} further non-exponential activities", offenders.len() - 8));
    }
    if instant_loop {
        reasons.push("instantaneous activities form a cycle of vanishing markings".to_string());
    }
    if let Some(summary) = &scc {
        if summary.terminal_classes != 1 {
            reasons.push(format!(
                "{} terminal classes — the steady state depends on the initial marking",
                summary.terminal_classes,
            ));
        }
    }

    let mut generator = None;
    let admissibility = if reasons.is_empty() {
        match eliminate_vanishing(&markings, &vanishing, &edges) {
            Ok(data) => {
                generator = Some(data);
                SolverAdmissibility::Analytic
            }
            Err(reason) => SolverAdmissibility::SimulationOnly(vec![reason]),
        }
    } else {
        SolverAdmissibility::SimulationOnly(reasons)
    };

    ReachReport {
        model: model.name().to_string(),
        config: config.clone(),
        place_names,
        markings,
        index,
        vanishing,
        edges,
        transitions,
        complete,
        place_bounds,
        dead_ends,
        offenders,
        instant_loop,
        scc,
        admissibility,
        generator,
    }
}

/// Interns a marking, growing the state tables and enqueuing new states
/// onto the exploration frontier; returns `None` when the state budget is
/// exhausted.
#[allow(clippy::too_many_arguments)]
fn intern(
    tokens: &[u64],
    markings: &mut Vec<Vec<u64>>,
    index: &mut HashMap<Vec<u64>, u32>,
    vanishing: &mut Vec<bool>,
    edges: &mut Vec<Vec<Edge>>,
    place_bounds: &mut [u64],
    frontier: &mut VecDeque<u32>,
    config: &ReachConfig,
) -> Option<u32> {
    match index.entry(tokens.to_vec()) {
        Entry::Occupied(hit) => Some(*hit.get()),
        Entry::Vacant(slot) => {
            if markings.len() >= config.max_states {
                return None;
            }
            let id = markings.len() as u32;
            slot.insert(id);
            markings.push(tokens.to_vec());
            vanishing.push(false);
            edges.push(Vec::new());
            for (bound, &count) in place_bounds.iter_mut().zip(tokens) {
                *bound = (*bound).max(count);
            }
            frontier.push_back(id);
            Some(id)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::Severity;
    use crate::{ModelBuilder, Simulator};
    use probdist::{Exponential, SimRng, Weibull};

    /// A plain repairable unit: up --fail--> down --repair--> up.
    fn repairable_unit(fail_rate: f64, repair_rate: f64) -> Model {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", Exponential::new(fail_rate).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Exponential::new(repair_rate).unwrap())
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn repairable_unit_is_fully_explored_and_analytic() {
        let model = repairable_unit(0.01, 0.5);
        let report = model.analyze();
        assert_eq!(report.num_states(), 2);
        assert_eq!(report.num_tangible(), 2);
        assert_eq!(report.num_vanishing(), 0);
        assert_eq!(report.num_transitions(), 2);
        assert!(report.complete());
        assert!(report.is_ergodic());
        assert_eq!(report.terminal_classes(), Some(1));
        assert_eq!(report.transient_states(), Some(0));
        assert!(report.all_exponential());
        assert!(report.admissibility().is_analytic());
        assert_eq!(report.place_bounds(), &[1, 1]);
        assert!(report.contains_tokens(&[1, 0]));
        assert!(report.contains_tokens(&[0, 1]));
        assert!(!report.contains_tokens(&[1, 1]));
    }

    #[test]
    fn assembled_generator_matches_the_closed_form() {
        let (lambda, mu) = (0.002, 0.1);
        let model = repairable_unit(lambda, mu);
        let assembly = model.analyze().assemble_generator().unwrap();
        assert_eq!(assembly.states.len(), 2);
        let up = assembly.state_index(&[1, 0]).unwrap();
        let pi = assembly.ctmc.steady_state().unwrap();
        assert!((pi[up] - mu / (lambda + mu)).abs() < 1e-12, "pi_up {}", pi[up]);
        assert_eq!(assembly.initial, vec![(up, 1.0)]);
    }

    #[test]
    fn vanishing_markings_are_eliminated_through_case_probabilities() {
        // up --fail--> triage (instant, 60% repairable / 40% replace);
        // both paths lead back up at different rates.
        let mut b = ModelBuilder::new("triage");
        let up = b.add_place("up", 1).unwrap();
        let hit = b.add_place("hit", 0).unwrap();
        let fix = b.add_place("fix", 0).unwrap();
        let swap = b.add_place("swap", 0).unwrap();
        b.timed_activity("fail", Exponential::new(0.01).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(hit, 1)
            .build()
            .unwrap();
        b.instant_activity("triage")
            .unwrap()
            .input_arc(hit, 1)
            .case(0.6)
            .output_arc(fix, 1)
            .case(0.4)
            .output_arc(swap, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Exponential::new(0.5).unwrap())
            .unwrap()
            .input_arc(fix, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.timed_activity("replace", Exponential::new(0.05).unwrap())
            .unwrap()
            .input_arc(swap, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());
        assert_eq!(report.num_vanishing(), 1);
        assert_eq!(report.num_tangible(), 3);
        assert!(report.admissibility().is_analytic(), "{:?}", report.admissibility());

        let assembly = report.assemble_generator().unwrap();
        // Tangible chain: up -> fix at 0.01*0.6, up -> swap at 0.01*0.4.
        let up_state = assembly.state_index(&[1, 0, 0, 0]).unwrap();
        let fix_state = assembly.state_index(&[0, 0, 1, 0]).unwrap();
        let swap_state = assembly.state_index(&[0, 0, 0, 1]).unwrap();
        let rate = |f: usize, t: usize| -> f64 {
            assembly
                .ctmc
                .transitions()
                .filter(|&(from, to, _)| from == f && to == t)
                .map(|(_, _, r)| r)
                .sum()
        };
        assert!((rate(up_state, fix_state) - 0.006).abs() < 1e-15);
        assert!((rate(up_state, swap_state) - 0.004).abs() < 1e-15);
        assert!((rate(fix_state, up_state) - 0.5).abs() < 1e-15);
        assert!((rate(swap_state, up_state) - 0.05).abs() < 1e-15);

        // The sparse steady state agrees with the dense oracle built from
        // the very same transitions.
        let mut dense = crate::ctmc::Ctmc::new(assembly.states.len()).unwrap();
        for (f, t, r) in assembly.ctmc.transitions() {
            dense.add_transition(f, t, r).unwrap();
        }
        let sparse_pi = assembly.ctmc.steady_state().unwrap();
        let dense_pi = dense.steady_state().unwrap();
        for (a, b) in sparse_pi.iter().zip(&dense_pi) {
            assert!((a - b).abs() < 1e-10, "sparse {a} vs dense {b}");
        }
    }

    #[test]
    fn unbounded_models_exhaust_the_budget_and_warn() {
        // Each firing consumes one token and mints two: unbounded growth.
        let mut b = ModelBuilder::new("minting");
        let p = b.add_place("pile", 1).unwrap();
        b.timed_activity("mint", Exponential::new(1.0).unwrap())
            .unwrap()
            .input_arc(p, 1)
            .output_arc(p, 2)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let config = ReachConfig { max_states: 10, ..ReachConfig::default() };
        let report = model.analyze_with(&config);
        assert!(!report.complete());
        assert_eq!(report.num_states(), 10);
        assert!(report.place_bound(crate::PlaceId(0)) >= 9);
        assert!(!report.admissibility().is_analytic());
        let reasons = report.admissibility().reasons().join("; ");
        assert!(reasons.contains("budget"), "{reasons}");

        // All-exponential, so suspected unboundedness is the one thing
        // blocking the analytic path: SAN040 is a Warning.
        let lint = report.to_lint_report();
        assert!(lint.has_code(codes::UNBOUNDED_SUSPECT));
        assert!(lint.has_code(codes::STATE_SPACE_SIZE));
        let san040 =
            lint.diagnostics().iter().find(|d| d.code() == codes::UNBOUNDED_SUSPECT).unwrap();
        assert_eq!(san040.severity(), Severity::Warning);
        assert_eq!(san040.element(), "pile");
        assert!(lint.deny(Severity::Warning).is_err());
    }

    #[test]
    fn transition_budget_is_honoured() {
        let model = repairable_unit(0.01, 0.5);
        let config = ReachConfig { max_transitions: 1, ..ReachConfig::default() };
        let report = model.analyze_with(&config);
        assert!(!report.complete());
        assert!(report.num_transitions() <= 1);
    }

    #[test]
    fn dead_ends_are_flagged_and_absorbing() {
        // One-shot unit: up --fail--> down, no repair.
        let mut b = ModelBuilder::new("one-shot");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", Exponential::new(0.1).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());
        assert_eq!(report.num_dead_ends(), 1);
        assert!(!report.is_ergodic());
        assert_eq!(report.terminal_classes(), Some(1));
        assert_eq!(report.transient_states(), Some(1));
        // A single terminal class keeps the model analytic: the steady
        // state is the point mass on the absorbing marking.
        assert!(report.admissibility().is_analytic());
        let assembly = report.assemble_generator().unwrap();
        let pi = assembly.ctmc.steady_state().unwrap();
        let down_state = assembly.state_index(&[0, 1]).unwrap();
        assert!((pi[down_state] - 1.0).abs() < 1e-12);

        let lint = report.to_lint_report();
        let san043 =
            lint.diagnostics().iter().find(|d| d.code() == codes::DEAD_END_MARKING).unwrap();
        assert_eq!(san043.severity(), Severity::Warning);
        assert_eq!(san043.element(), "down=1");
    }

    #[test]
    fn non_exponential_timings_are_named() {
        let mut b = ModelBuilder::new("weibull-unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("wear_out", Weibull::from_shape_and_mean(1.5, 1000.0).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Exponential::new(0.1).unwrap())
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());
        assert!(!report.all_exponential());
        assert_eq!(report.timing_offenders().len(), 1);
        assert_eq!(report.timing_offenders()[0].activity, "wear_out");
        assert_eq!(report.timing_offenders()[0].family, "weibull");
        let reasons = report.admissibility().reasons().join("; ");
        assert!(reasons.contains("wear_out") && reasons.contains("weibull"), "{reasons}");
        assert!(report.assemble_generator().is_err());

        let lint = report.to_lint_report();
        let san042 =
            lint.diagnostics().iter().find(|d| d.code() == codes::NON_EXPONENTIAL_TIMING).unwrap();
        assert_eq!(san042.severity(), Severity::Info);
        assert_eq!(san042.element(), "wear_out");
        // Info-only: a deliberately general-distribution model still
        // passes the CI deny-warning gate.
        assert!(lint.deny(Severity::Warning).is_ok());
    }

    #[test]
    fn marking_dependent_exponentials_stay_analytic() {
        // The aggregate-rate idiom: rate n·λ read from the marking.
        let mut b = ModelBuilder::new("aggregate");
        let working = b.add_place("working", 2).unwrap();
        let failed = b.add_place("failed", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            let n = m.tokens(working).max(1) as f64;
            Dist::Exponential(probdist::Exponential::new(n * 0.01).unwrap())
        })
        .unwrap()
        .timing_reads(&[working])
        .input_arc(working, 1)
        .output_arc(failed, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", Exponential::new(0.2).unwrap())
            .unwrap()
            .input_arc(failed, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.all_exponential());
        assert!(report.admissibility().is_analytic());
        let assembly = report.assemble_generator().unwrap();
        // Birth-death chain with failure rates 2λ then λ.
        let s0 = assembly.state_index(&[2, 0]).unwrap();
        let s1 = assembly.state_index(&[1, 1]).unwrap();
        let rate: f64 = assembly
            .ctmc
            .transitions()
            .filter(|&(f, t, _)| f == s0 && t == s1)
            .map(|(_, _, r)| r)
            .sum();
        assert!((rate - 0.02).abs() < 1e-15, "aggregate rate {rate}");
    }

    #[test]
    fn instantaneous_cycles_are_rejected() {
        let mut b = ModelBuilder::new("ping-pong");
        let ping = b.add_place("ping", 1).unwrap();
        let pong = b.add_place("pong", 0).unwrap();
        b.instant_activity("a").unwrap().input_arc(ping, 1).output_arc(pong, 1).build().unwrap();
        b.instant_activity("b").unwrap().input_arc(pong, 1).output_arc(ping, 1).build().unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());
        assert!(report.has_unstable_instant_loop());
        assert!(!report.admissibility().is_analytic());
        let reasons = report.admissibility().reasons().join("; ");
        assert!(reasons.contains("cycle"), "{reasons}");
    }

    #[test]
    fn multiple_terminal_classes_block_the_steady_state() {
        // A probabilistic case latches into one of two absorbing markings.
        let mut b = ModelBuilder::new("forked");
        let start = b.add_place("start", 1).unwrap();
        let left = b.add_place("left", 0).unwrap();
        let right = b.add_place("right", 0).unwrap();
        b.timed_activity("fork", Exponential::new(1.0).unwrap())
            .unwrap()
            .input_arc(start, 1)
            .case(0.5)
            .output_arc(left, 1)
            .case(0.5)
            .output_arc(right, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());
        assert_eq!(report.terminal_classes(), Some(2));
        assert!(!report.admissibility().is_analytic());
        let err = report.assemble_generator().unwrap_err();
        assert!(matches!(err, SanError::NotAnalytic { .. }), "{err}");
        assert!(err.to_string().contains("terminal classes"), "{err}");
    }

    #[test]
    fn assume_ergodic_escalates_non_ergodic_structure() {
        let mut b = ModelBuilder::new("one-shot");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", Exponential::new(0.1).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();

        let relaxed = model.analyze().to_lint_report();
        let info = relaxed.diagnostics().iter().find(|d| d.code() == codes::NON_ERGODIC).unwrap();
        assert_eq!(info.severity(), Severity::Info);

        let config = ReachConfig { assume_ergodic: true, ..ReachConfig::default() };
        let strict = model.analyze_with(&config).to_lint_report();
        let warn = strict.diagnostics().iter().find(|d| d.code() == codes::NON_ERGODIC).unwrap();
        assert_eq!(warn.severity(), Severity::Warning);
    }

    #[test]
    fn traced_runs_stay_inside_the_reachable_set() {
        // A model with instants and probabilistic cases, long horizon.
        let mut b = ModelBuilder::new("traced");
        let up = b.add_place("up", 2).unwrap();
        let hit = b.add_place("hit", 0).unwrap();
        let fix = b.add_place("fix", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            let n = m.tokens(up).max(1) as f64;
            Dist::Exponential(probdist::Exponential::new(n * 0.05).unwrap())
        })
        .unwrap()
        .timing_reads(&[up])
        .input_arc(up, 1)
        .output_arc(hit, 1)
        .build()
        .unwrap();
        b.instant_activity("triage")
            .unwrap()
            .input_arc(hit, 1)
            .case(0.7)
            .output_arc(fix, 1)
            .case(0.3)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Exponential::new(0.5).unwrap())
            .unwrap()
            .input_arc(fix, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let report = model.analyze();
        assert!(report.complete());

        let sim = Simulator::new(&model);
        for seed in 0..8 {
            let mut rng = SimRng::seed_from_u64(seed);
            let (_, trace) = sim.run_traced(&[], 5_000.0, 0.0, &mut rng).unwrap();
            assert!(!trace.is_empty());
            for tokens in replay_markings(&model, &trace) {
                assert!(
                    report.contains_tokens(&tokens),
                    "seed {seed}: visited marking {tokens:?} outside the reachable set"
                );
            }
        }
    }

    #[test]
    fn successor_graph_is_exposed() {
        let model = repairable_unit(0.01, 0.5);
        let report = model.analyze();
        // State 0 (up) -> state 1 (down) -> state 0.
        assert_eq!(report.successors(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(report.successors(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(report.successors(7).count(), 0);
    }
}
