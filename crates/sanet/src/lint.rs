//! Static analysis of compiled SAN models: declaration soundness,
//! structural checks, and reward/config linting.
//!
//! The whole method of the paper rests on the models being *structurally
//! right* before any simulation runs, and the event-calendar kernel's
//! correctness silently depends on authors declaring
//! [`enabling_reads`](crate::ActivityBuilder::enabling_reads) and
//! [`timing_reads`](crate::ActivityBuilder::timing_reads) truthfully: an
//! under-declared gate read makes the scheduler skip re-examining an
//! activity whose enabling just changed, which silently corrupts results.
//! [`Model::lint`](crate::Model::lint) machine-checks exactly that class of
//! bug (plus a set of structural and reward checks) and reports typed
//! diagnostics.
//!
//! # How it works
//!
//! Gate predicates, timing functions, and reward functions are opaque
//! closures, so their read footprints cannot be recovered syntactically.
//! The linter instead *probes* them: it evaluates each closure against a
//! deterministic fuzzed corpus of markings whose reads are captured by an
//! instrumented recording [`Marking`], and compares the observed footprint
//! against the declarations. Probing follows engine semantics — gates are
//! only evaluated on markings whose input arcs are covered, timing
//! functions only on fully enabled markings — and closure panics are
//! caught and reported instead of aborting the lint.
//!
//! Because the corpus is finite the analysis is a *sound alarm, not a
//! proof*: every reported undeclared read was actually observed (no false
//! positives for `SAN001`/`SAN002`), while a read hidden behind a branch
//! the corpus never hit can escape. The default corpus makes that
//! vanishingly unlikely for the token ranges real models use.
//!
//! # Diagnostic codes
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `SAN001` | Error | gate predicate read a place missing from `enabling_reads` |
//! | `SAN002` | Error | timing function read a place missing from `timing_reads` |
//! | `SAN003` | Info | declared read never observed (possible over-declaration), or an inert declaration |
//! | `SAN004` | Error | timing function panicked while being probed |
//! | `SAN005` | Error | gate predicate or gate function panicked while being probed |
//! | `SAN006` | Info | gates or marking-dependent timing without declarations (conservative, correct but slow) |
//! | `SAN010` | Warning | dead activity: never enabled over the probe corpus |
//! | `SAN011` | Warning | disconnected place: no arc, gate, declaration, or reward touches it |
//! | `SAN012` | Error | underflow hazard: one activity drains the same place through several input arcs |
//! | `SAN013` | Error | input arc demands more tokens than a P-invariant bound allows: provably dead |
//! | `SAN014` | Info | certified token-conservation P-invariant (with its value at the initial marking) |
//! | `SAN020` | Error | impulse reward references an activity outside the model |
//! | `SAN021` | Warning | impulse reward attached to a dead activity |
//! | `SAN022` | Error | reward function panicked while being probed |
//! | `SAN023` | Warning | reward function produced a non-finite value |
//! | `SAN030` | Warning | degenerate design-space axis (reported by `cfs-model`'s sweep lint) |
//! | `SAN031` | Error | sweep seed-stream collision (reported by `cfs-model`'s sweep lint) |
//! | `SAN040` | Warning/Info | state budget exhausted: the model may be unbounded (reported by [`reach`](crate::reach)) |
//! | `SAN041` | Info/Warning | non-ergodic structure: absorbing/terminal classes plus transient markings |
//! | `SAN042` | Info | non-exponential timing blocks analytic solving (offending activity named) |
//! | `SAN043` | Warning | reachable dead-end marking: no activity enabled |
//! | `SAN044` | Info | state-space size report (markings, tangible/vanishing split, transitions) |
//!
//! The `SAN04x` block comes from the semantic tier in [`reach`](crate::reach)
//! ([`Model::analyze`](crate::Model::analyze)): exhaustive state-space
//! exploration rather than corpus probing, rendered through the same
//! [`LintReport`] machinery by [`ReachReport::to_lint_report`](crate::reach::ReachReport::to_lint_report).
//!
//! P-invariants are extracted by integer (Farkas) elimination on the arc
//! incidence matrix, restricted to places no gate function was observed to
//! write — so every reported invariant is genuinely conserved by the
//! model, and the bound check behind `SAN013` is sound.

use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use probdist::SimRng;
use serde::{Serialize, Value};

use crate::marking::ReadRecorder;
use crate::model::Timing;
use crate::reward::RewardVariant;
use crate::{Marking, Model, RewardSpec, SanError};

/// Severity of a [`Diagnostic`], ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing is wrong, but the fact is worth surfacing
    /// (certified invariants, conservative declarations).
    Info,
    /// Probably a modelling mistake, but the simulation stays correct.
    Warning,
    /// The model is broken or would silently corrupt simulation results.
    Error,
}

impl Severity {
    /// Parses a severity name (`error`/`warning`/`info`, case-insensitive).
    pub fn parse(name: &str) -> Option<Severity> {
        match name.to_ascii_lowercase().as_str() {
            "error" => Some(Severity::Error),
            "warning" | "warn" => Some(Severity::Warning),
            "info" => Some(Severity::Info),
            _ => None,
        }
    }

    /// The lowercase name of the severity.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The diagnostic codes emitted by the linter, documented in the
/// [module-level table](self).
pub mod codes {
    /// Gate predicate read a place missing from `enabling_reads`.
    pub const UNDECLARED_ENABLING_READ: &str = "SAN001";
    /// Timing function read a place missing from `timing_reads`.
    pub const UNDECLARED_TIMING_READ: &str = "SAN002";
    /// Declared read never observed, or an inert declaration.
    pub const UNOBSERVED_DECLARED_READ: &str = "SAN003";
    /// Timing function panicked while being probed.
    pub const TIMING_PANICKED: &str = "SAN004";
    /// Gate predicate or gate function panicked while being probed.
    pub const GATE_PANICKED: &str = "SAN005";
    /// Gates or marking-dependent timing without declarations.
    pub const CONSERVATIVE_DECLARATIONS: &str = "SAN006";
    /// Activity never enabled over the probe corpus.
    pub const DEAD_ACTIVITY: &str = "SAN010";
    /// Place not referenced by any arc, gate, declaration, or reward.
    pub const DISCONNECTED_PLACE: &str = "SAN011";
    /// One activity drains the same place through several input arcs.
    pub const UNDERFLOW_HAZARD: &str = "SAN012";
    /// Input arc demands more tokens than a P-invariant bound allows.
    pub const INVARIANT_STARVED_ARC: &str = "SAN013";
    /// Certified token-conservation P-invariant.
    pub const PLACE_INVARIANT: &str = "SAN014";
    /// Impulse reward references an activity outside the model.
    pub const UNKNOWN_REWARD_TARGET: &str = "SAN020";
    /// Impulse reward attached to a dead activity.
    pub const IMPULSE_ON_DEAD_ACTIVITY: &str = "SAN021";
    /// Reward function panicked while being probed.
    pub const REWARD_PANICKED: &str = "SAN022";
    /// Reward function produced a non-finite value.
    pub const NON_FINITE_REWARD: &str = "SAN023";
    /// Degenerate design-space axis.
    pub const DEGENERATE_AXIS: &str = "SAN030";
    /// Sweep seed-stream collision.
    pub const SEED_COLLISION: &str = "SAN031";
    /// Reachability budget exhausted; the model may be unbounded.
    pub const UNBOUNDED_SUSPECT: &str = "SAN040";
    /// Non-ergodic marking graph (terminal classes plus transient states).
    pub const NON_ERGODIC: &str = "SAN041";
    /// Non-exponential timing blocks the analytic solver tier.
    pub const NON_EXPONENTIAL_TIMING: &str = "SAN042";
    /// Reachable dead-end marking (no activity enabled).
    pub const DEAD_END_MARKING: &str = "SAN043";
    /// State-space size report from the reachability explorer.
    pub const STATE_SPACE_SIZE: &str = "SAN044";
}

/// One typed finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    code: &'static str,
    severity: Severity,
    element: String,
    message: String,
}

impl Diagnostic {
    /// Creates a diagnostic (used by `sanet` itself and by the sweep lint
    /// in `cfs-model`).
    pub fn new(
        code: &'static str,
        severity: Severity,
        element: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { code, severity, element: element.into(), message: message.into() }
    }

    /// The `SAN0xx` code (see [`codes`]).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// The severity.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The model element the diagnostic is about (activity, place, reward,
    /// or axis name).
    pub fn element(&self) -> &str {
        &self.element
    }

    /// The human-readable explanation.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] {}: {}", self.code, self.severity, self.element, self.message)
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::String(self.code.to_string())),
            ("severity".to_string(), Value::String(self.severity.name().to_string())),
            ("element".to_string(), Value::String(self.element.clone())),
            ("message".to_string(), Value::String(self.message.clone())),
        ])
    }
}

/// Configuration of the probe corpus behind
/// [`Model::lint_with`](crate::Model::lint_with).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Number of fuzzed markings to probe closures with (the initial
    /// marking is always included). More probes reduce the chance of a
    /// conditional read or a rarely-enabled activity escaping the lint.
    pub probes: usize,
    /// Seed of the deterministic fuzzing stream.
    pub seed: u64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { probes: 192, seed: 0x5A17 }
    }
}

/// The outcome of linting one model: the typed diagnostics plus rendering
/// and deny-level helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    model: String,
    probes: usize,
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Assembles a report from pre-computed diagnostics, applying the
    /// standard ordering (severity descending, then code). Used by the
    /// reachability tier ([`crate::reach`]), whose `SAN04x` diagnostics
    /// derive from state-space exploration rather than the probe corpus —
    /// `probes` is `0` there.
    pub(crate) fn from_parts(
        model: String,
        probes: usize,
        mut diagnostics: Vec<Diagnostic>,
    ) -> LintReport {
        diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(b.code)));
        LintReport { model, probes, diagnostics }
    }

    /// Name of the linted model.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Number of probe markings the closures were evaluated against.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// All diagnostics, most severe first.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether the lint produced no diagnostics at all (not even Info).
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The highest severity present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(Diagnostic::severity).max()
    }

    /// Whether any diagnostic carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of diagnostics at or above `level`.
    pub fn count_at_or_above(&self, level: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity >= level).count()
    }

    /// Fails with [`SanError::LintRejected`] if any diagnostic is at or
    /// above `level`.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::LintRejected`] listing the offending
    /// diagnostics.
    pub fn deny(&self, level: Severity) -> Result<(), SanError> {
        let offending: Vec<&Diagnostic> =
            self.diagnostics.iter().filter(|d| d.severity >= level).collect();
        if offending.is_empty() {
            return Ok(());
        }
        let details =
            offending.iter().map(std::string::ToString::to_string).collect::<Vec<_>>().join("\n");
        Err(SanError::LintRejected {
            model: self.model.clone(),
            rejected: offending.len(),
            details,
        })
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lint of `{}` ({} probes): {} diagnostic(s)",
            self.model,
            self.probes,
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl Serialize for LintReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("model".to_string(), Value::String(self.model.clone())),
            ("probes".to_string(), Value::UInt(self.probes as u64)),
            ("clean".to_string(), Value::Bool(self.is_clean())),
            (
                "max_severity".to_string(),
                match self.max_severity() {
                    Some(s) => Value::String(s.name().to_string()),
                    None => Value::Null,
                },
            ),
            ("diagnostics".to_string(), self.diagnostics.to_value()),
        ])
    }
}

/// Per-activity evidence accumulated over the probe corpus.
struct ActivityProbe {
    gate_reads: BTreeSet<usize>,
    timing_reads: BTreeSet<usize>,
    gate_writes: BTreeSet<usize>,
    ever_enabled: bool,
    ever_gates_probed: bool,
    gate_panic: Option<String>,
    timing_panic: Option<String>,
}

/// A certified place invariant: `sum(weight_p * tokens_p) == value` in
/// every reachable marking.
struct Invariant {
    /// Sparse `(place, weight)` support, weights positive.
    weights: Vec<(usize, u64)>,
    /// The conserved value, fixed by the initial marking.
    value: u64,
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn fuzzed_tokens(initial: u64, rng: &mut SimRng) -> u64 {
    match rng.uniform_index(8) {
        0 => 0,
        1 => 1,
        2 => 2,
        3 | 4 => initial,
        5 => initial + 1,
        6 => initial.saturating_sub(1),
        _ => rng.uniform_index(usize::try_from(initial).unwrap_or(usize::MAX).max(3) + 2) as u64,
    }
}

fn probe_corpus(initial: &[u64], config: &LintConfig) -> Vec<Vec<u64>> {
    let mut rng = SimRng::seed_from_u64(config.seed);
    let mut corpus = Vec::with_capacity(config.probes.max(1));
    corpus.push(initial.to_vec());
    while corpus.len() < config.probes.max(1) {
        corpus.push(initial.iter().map(|&init| fuzzed_tokens(init, &mut rng)).collect());
    }
    corpus
}

fn place_list(model: &Model, places: impl IntoIterator<Item = usize>) -> String {
    places
        .into_iter()
        .map(|p| format!("`{}`", model.place_name(crate::PlaceId(p))))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs the full lint; called through [`Model::lint_with`].
pub(crate) fn lint_model(model: &Model, config: &LintConfig, rewards: &[RewardSpec]) -> LintReport {
    use probdist::telemetry::{span, MetricId};

    let _lint_span = span(MetricId::SpanLint);
    let declaration_span = span(MetricId::SpanLintDeclaration);
    let initial: Vec<u64> = model.initial_marking().as_slice().to_vec();
    let corpus = probe_corpus(&initial, config);
    let recorder = ReadRecorder::new();
    let activities = model.activities();

    let mut probes: Vec<ActivityProbe> = activities
        .iter()
        .map(|_| ActivityProbe {
            gate_reads: BTreeSet::new(),
            timing_reads: BTreeSet::new(),
            gate_writes: BTreeSet::new(),
            ever_enabled: false,
            ever_gates_probed: false,
            gate_panic: None,
            timing_panic: None,
        })
        .collect();

    // ---- Probe pass: evaluate every closure over the corpus. -----------
    for tokens in &corpus {
        let probe = Marking::with_read_recorder(tokens.clone(), std::sync::Arc::clone(&recorder));
        for (ai, activity) in activities.iter().enumerate() {
            // Mirror engine semantics: gates are only consulted once the
            // input arcs are covered, timing only once fully enabled.
            if !activity.input_arcs.iter().all(|&(p, n)| tokens[p.index()] >= n) {
                continue;
            }
            let state = &mut probes[ai];
            let mut enabled = true;
            if !activity.input_gates.is_empty() {
                state.ever_gates_probed = true;
                let verdict = catch_unwind(AssertUnwindSafe(|| {
                    activity.input_gates.iter().all(|g| (g.predicate)(&probe))
                }));
                state.gate_reads.extend(recorder.take().into_iter().map(|p| p as usize));
                match verdict {
                    Ok(satisfied) => enabled = satisfied,
                    Err(payload) => {
                        if state.gate_panic.is_none() {
                            state.gate_panic = Some(panic_text(payload));
                        }
                        enabled = false;
                    }
                }
            }
            if !enabled {
                continue;
            }
            state.ever_enabled = true;
            if let Timing::TimedFn(sample) = &activity.timing {
                let verdict = catch_unwind(AssertUnwindSafe(|| {
                    let _ = sample(&probe);
                }));
                state.timing_reads.extend(recorder.take().into_iter().map(|p| p as usize));
                if let Err(payload) = verdict {
                    if state.timing_panic.is_none() {
                        state.timing_panic = Some(panic_text(payload));
                    }
                }
            }
            // Probe a firing of every case to observe which places the
            // gate *functions* write (arc updates are structural and run
            // untracked; only gate writes land in the change log).
            for case in &activity.cases {
                let mut fired = Marking::new(tokens.clone());
                for &(p, n) in &activity.input_arcs {
                    fired.remove_tokens(p, n);
                }
                fired.enable_tracking();
                let verdict = catch_unwind(AssertUnwindSafe(|| {
                    for gate in &activity.input_gates {
                        (gate.function)(&mut fired);
                    }
                    fired.set_tracking(false);
                    for &(p, n) in &case.output_arcs {
                        fired.add_tokens(p, n);
                    }
                    fired.set_tracking(true);
                    for gate in &case.output_gates {
                        (gate.function)(&mut fired);
                    }
                }));
                state.gate_writes.extend(fired.log().iter().map(|&p| p as usize));
                if let Err(payload) = verdict {
                    if state.gate_panic.is_none() {
                        state.gate_panic = Some(panic_text(payload));
                    }
                }
            }
        }
        // Drain any reads left by a panicking closure so they are not
        // attributed to the next activity.
        let _ = recorder.take();
    }

    let mut diagnostics = Vec::new();

    // ---- Pass 1: declaration soundness. --------------------------------
    for (activity, state) in activities.iter().zip(&probes) {
        let arc_places: BTreeSet<usize> =
            activity.input_arcs.iter().map(|&(p, _)| p.index()).collect();
        if let Some(declared) = &activity.declared_reads {
            let declared_set: BTreeSet<usize> =
                declared.iter().map(super::marking::PlaceId::index).collect();
            let undeclared: Vec<usize> = state
                .gate_reads
                .iter()
                .copied()
                .filter(|p| !arc_places.contains(p) && !declared_set.contains(p))
                .collect();
            if !undeclared.is_empty() {
                diagnostics.push(Diagnostic::new(
                    codes::UNDECLARED_ENABLING_READ,
                    Severity::Error,
                    &activity.name,
                    format!(
                        "gate predicate reads {} but `enabling_reads` does not declare \
                         {}; the calendar kernel would miss enabling changes",
                        place_list(model, undeclared.iter().copied()),
                        if undeclared.len() == 1 { "it" } else { "them" },
                    ),
                ));
            }
            if state.ever_gates_probed {
                let unobserved: Vec<usize> = declared_set
                    .iter()
                    .copied()
                    .filter(|p| !state.gate_reads.contains(p) && !arc_places.contains(p))
                    .collect();
                if !unobserved.is_empty() {
                    diagnostics.push(Diagnostic::new(
                        codes::UNOBSERVED_DECLARED_READ,
                        Severity::Info,
                        &activity.name,
                        format!(
                            "`enabling_reads` declares {} but no probe observed the gates \
                             reading {} ({} probes); possible over-declaration",
                            place_list(model, unobserved.iter().copied()),
                            if unobserved.len() == 1 { "it" } else { "them" },
                            corpus.len(),
                        ),
                    ));
                }
            }
        } else if !activity.input_gates.is_empty() {
            diagnostics.push(Diagnostic::new(
                codes::CONSERVATIVE_DECLARATIONS,
                Severity::Info,
                &activity.name,
                "has input gates but no `enabling_reads` declaration; the scheduler \
                 re-examines it after every event (correct but conservative)"
                    .to_string(),
            ));
        }

        let timing_dependent = matches!(activity.timing, Timing::TimedFn(_));
        match &activity.timing_reads {
            Some(declared) if activity.resample_on_change && timing_dependent => {
                let declared_set: BTreeSet<usize> =
                    declared.iter().map(super::marking::PlaceId::index).collect();
                let undeclared: Vec<usize> = state
                    .timing_reads
                    .iter()
                    .copied()
                    .filter(|p| !declared_set.contains(p))
                    .collect();
                if !undeclared.is_empty() {
                    diagnostics.push(Diagnostic::new(
                        codes::UNDECLARED_TIMING_READ,
                        Severity::Error,
                        &activity.name,
                        format!(
                            "timing function reads {} but `timing_reads` does not declare \
                             {}; the sampled delay would not be refreshed when {} written",
                            place_list(model, undeclared.iter().copied()),
                            if undeclared.len() == 1 { "it" } else { "them" },
                            if undeclared.len() == 1 { "it is" } else { "they are" },
                        ),
                    ));
                }
                if state.ever_enabled {
                    let unobserved: Vec<usize> = declared_set
                        .iter()
                        .copied()
                        .filter(|p| !state.timing_reads.contains(p))
                        .collect();
                    if !unobserved.is_empty() {
                        diagnostics.push(Diagnostic::new(
                            codes::UNOBSERVED_DECLARED_READ,
                            Severity::Info,
                            &activity.name,
                            format!(
                                "`timing_reads` declares {} but no probe observed the \
                                 timing function reading {} ({} probes); possible \
                                 over-declaration",
                                place_list(model, unobserved.iter().copied()),
                                if unobserved.len() == 1 { "it" } else { "them" },
                                corpus.len(),
                            ),
                        ));
                    }
                }
            }
            Some(_) => {
                diagnostics.push(Diagnostic::new(
                    codes::UNOBSERVED_DECLARED_READ,
                    Severity::Info,
                    &activity.name,
                    "`timing_reads` is declared but inert: the activity either has a \
                     fixed timing distribution or does not resample on marking changes"
                        .to_string(),
                ));
            }
            None if activity.resample_on_change && timing_dependent => {
                diagnostics.push(Diagnostic::new(
                    codes::CONSERVATIVE_DECLARATIONS,
                    Severity::Info,
                    &activity.name,
                    "marking-dependent timing without a `timing_reads` declaration; \
                     the sampled delay is redrawn after every event (correct but \
                     conservative)"
                        .to_string(),
                ));
            }
            None => {}
        }

        if let Some(text) = &state.gate_panic {
            diagnostics.push(Diagnostic::new(
                codes::GATE_PANICKED,
                Severity::Error,
                &activity.name,
                format!("a gate predicate or gate function panicked while being probed: {text}"),
            ));
        }
        if let Some(text) = &state.timing_panic {
            diagnostics.push(Diagnostic::new(
                codes::TIMING_PANICKED,
                Severity::Error,
                &activity.name,
                format!("the timing function panicked while being probed: {text}"),
            ));
        }
    }

    // ---- Pass 2: structural analysis. ----------------------------------
    drop(declaration_span);
    let structural_span = span(MetricId::SpanLintStructural);
    for activity in activities {
        let mut seen = BTreeSet::new();
        let mut duplicated = BTreeSet::new();
        for &(p, _) in &activity.input_arcs {
            if !seen.insert(p.index()) {
                duplicated.insert(p.index());
            }
        }
        if !duplicated.is_empty() {
            diagnostics.push(Diagnostic::new(
                codes::UNDERFLOW_HAZARD,
                Severity::Error,
                &activity.name,
                format!(
                    "drains {} through multiple input arcs; enabling checks each arc \
                     independently, so a firing can underflow the place",
                    place_list(model, duplicated.iter().copied()),
                ),
            ));
        }
    }

    let invariants = farkas_invariants(model, &probes);
    let starved = starved_activities(model, &invariants, &mut diagnostics);

    for (ai, (activity, state)) in activities.iter().zip(&probes).enumerate() {
        if !state.ever_enabled && !starved.contains(&ai) {
            diagnostics.push(Diagnostic::new(
                codes::DEAD_ACTIVITY,
                Severity::Warning,
                &activity.name,
                format!(
                    "never enabled over {} probe markings; the activity may be dead",
                    corpus.len(),
                ),
            ));
        }
    }

    // A place is connected if anything structural or observed touches it:
    // arcs, declarations, probed gate reads/writes, timing reads, or (when
    // rewards are provided) a reward function read.
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    for (activity, state) in activities.iter().zip(&probes) {
        touched.extend(activity.input_arcs.iter().map(|&(p, _)| p.index()));
        for case in &activity.cases {
            touched.extend(case.output_arcs.iter().map(|&(p, _)| p.index()));
        }
        touched
            .extend(activity.declared_reads.iter().flatten().map(super::marking::PlaceId::index));
        touched.extend(activity.timing_reads.iter().flatten().map(super::marking::PlaceId::index));
        touched.extend(state.gate_reads.iter().copied());
        touched.extend(state.timing_reads.iter().copied());
        touched.extend(state.gate_writes.iter().copied());
    }

    // ---- Pass 3: reward linting. ----------------------------------------
    drop(structural_span);
    let _reward_span = span(MetricId::SpanLintReward);
    let mut dead: BTreeSet<usize> =
        probes.iter().enumerate().filter(|(_, s)| !s.ever_enabled).map(|(i, _)| i).collect();
    dead.extend(starved.iter().copied());
    for spec in rewards {
        match &spec.variant {
            RewardVariant::Impulse { activity, .. } => {
                if activity.index() >= activities.len() {
                    diagnostics.push(Diagnostic::new(
                        codes::UNKNOWN_REWARD_TARGET,
                        Severity::Error,
                        spec.name(),
                        format!(
                            "impulse reward targets activity #{} but the model has only \
                             {} activities",
                            activity.index(),
                            activities.len(),
                        ),
                    ));
                } else if dead.contains(&activity.index()) {
                    diagnostics.push(Diagnostic::new(
                        codes::IMPULSE_ON_DEAD_ACTIVITY,
                        Severity::Warning,
                        spec.name(),
                        format!(
                            "impulse reward targets `{}`, which never fires over the \
                             probe corpus; the reward would always be zero",
                            model.activity_name(crate::ActivityId(activity.index())),
                        ),
                    ));
                }
            }
            RewardVariant::Rate { function, .. } => {
                let mut panicked = None;
                let mut non_finite = false;
                for tokens in corpus.iter().take(32) {
                    let probe = Marking::with_read_recorder(
                        tokens.clone(),
                        std::sync::Arc::clone(&recorder),
                    );
                    match catch_unwind(AssertUnwindSafe(|| function(&probe))) {
                        Ok(v) if !v.is_finite() => non_finite = true,
                        Ok(_) => {}
                        Err(payload) => {
                            if panicked.is_none() {
                                panicked = Some(panic_text(payload));
                            }
                        }
                    }
                    touched.extend(recorder.take().into_iter().map(|p| p as usize));
                }
                if let Some(text) = panicked {
                    diagnostics.push(Diagnostic::new(
                        codes::REWARD_PANICKED,
                        Severity::Error,
                        spec.name(),
                        format!(
                            "rate reward panicked while being probed (usually a place id \
                             from another model): {text}"
                        ),
                    ));
                }
                if non_finite {
                    diagnostics.push(Diagnostic::new(
                        codes::NON_FINITE_REWARD,
                        Severity::Warning,
                        spec.name(),
                        "rate reward produced a non-finite value on a probe marking".to_string(),
                    ));
                }
            }
        }
    }

    for p in 0..model.num_places() {
        if !touched.contains(&p) {
            diagnostics.push(Diagnostic::new(
                codes::DISCONNECTED_PLACE,
                Severity::Warning,
                model.place_name(crate::PlaceId(p)),
                "no arc, gate, declaration, or reward references this place".to_string(),
            ));
        }
    }

    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(b.code)));

    LintReport { model: model.name().to_string(), probes: corpus.len(), diagnostics }
}

/// Extracts certified P-invariants by Farkas-style integer elimination on
/// the arc incidence matrix, restricted to places no probed gate function
/// writes (so the certificates survive gate behaviour, not only arcs).
fn farkas_invariants(model: &Model, probes: &[ActivityProbe]) -> Vec<Invariant> {
    const MAX_CANDIDATES: usize = 512;
    let places = model.num_places();
    let gate_written: BTreeSet<usize> =
        probes.iter().flat_map(|s| s.gate_writes.iter().copied()).collect();

    // Start from one unit candidate per gate-free place.
    let mut candidates: Vec<Vec<i64>> = (0..places)
        .filter(|p| !gate_written.contains(p))
        .map(|p| {
            let mut y = vec![0i64; places];
            y[p] = 1;
            y
        })
        .collect();

    // Gate writes already disqualified their places from every candidate's
    // support, so the columns below can consist of arc effects alone.
    for activity in model.activities() {
        for case in &activity.cases {
            // Net effect of firing this case, as a dense column.
            let mut column: Vec<i64> = vec![0; places];
            for &(p, n) in &activity.input_arcs {
                column[p.index()] -= i64::try_from(n).unwrap_or(i64::MAX);
            }
            for &(p, n) in &case.output_arcs {
                column[p.index()] += i64::try_from(n).unwrap_or(i64::MAX);
            }
            if column.iter().all(|&v| v == 0) {
                continue;
            }
            let dots: Vec<i64> = candidates
                .iter()
                .map(|y| y.iter().zip(&column).map(|(&a, &b)| a * b).sum())
                .collect();
            let mut next: Vec<Vec<i64>> = Vec::new();
            for (y, &d) in candidates.iter().zip(&dots) {
                if d == 0 {
                    next.push(y.clone());
                }
            }
            'combine: for (i, &di) in dots.iter().enumerate() {
                if di <= 0 {
                    continue;
                }
                for (j, &dj) in dots.iter().enumerate() {
                    if dj >= 0 {
                        continue;
                    }
                    if next.len() >= MAX_CANDIDATES {
                        break 'combine;
                    }
                    // y = di * y_j + (-dj) * y_i annihilates the column.
                    let mut y: Vec<i64> = candidates[j]
                        .iter()
                        .zip(&candidates[i])
                        .map(|(&yj, &yi)| {
                            di.saturating_mul(yj).saturating_add((-dj).saturating_mul(yi))
                        })
                        .collect();
                    let g = y.iter().fold(0u64, |g, &v| gcd(g, v.unsigned_abs()));
                    if g > 1 {
                        for v in &mut y {
                            *v /= i64::try_from(g).unwrap_or(1);
                        }
                    }
                    if !next.contains(&y) {
                        next.push(y);
                    }
                }
            }
            // Keep only support-minimal candidates: a vector whose support
            // strictly contains another's is a redundant combination.
            let supports: Vec<BTreeSet<usize>> = next
                .iter()
                .map(|y| y.iter().enumerate().filter(|(_, &v)| v != 0).map(|(p, _)| p).collect())
                .collect();
            let keep: Vec<bool> = supports
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    !supports
                        .iter()
                        .enumerate()
                        .any(|(j, t)| i != j && t.is_subset(s) && (t.len() < s.len() || j < i))
                })
                .collect();
            candidates = next.into_iter().zip(keep).filter(|(_, k)| *k).map(|(y, _)| y).collect();
        }
    }

    let initial = model.initial_marking();
    candidates
        .into_iter()
        .filter(|y| y.iter().any(|&v| v != 0))
        .map(|y| {
            let weights: Vec<(usize, u64)> = y
                .iter()
                .enumerate()
                .filter(|(_, &v)| v != 0)
                .map(|(p, &v)| (p, v.unsigned_abs()))
                .collect();
            let value = weights.iter().map(|&(p, w)| w * initial.tokens(crate::PlaceId(p))).sum();
            Invariant { weights, value }
        })
        .collect()
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Reports the certified invariants (`SAN014`) and flags input arcs whose
/// demand exceeds an invariant bound derived from the initial marking
/// (`SAN013`); returns the indices of provably starved activities.
fn starved_activities(
    model: &Model,
    invariants: &[Invariant],
    diagnostics: &mut Vec<Diagnostic>,
) -> BTreeSet<usize> {
    const MAX_REPORTED: usize = 8;
    for invariant in invariants.iter().take(MAX_REPORTED) {
        let formula = invariant
            .weights
            .iter()
            .map(|&(p, w)| {
                let name = model.place_name(crate::PlaceId(p));
                if w == 1 {
                    format!("`{name}`")
                } else {
                    format!("{w}*`{name}`")
                }
            })
            .collect::<Vec<_>>()
            .join(" + ");
        let element = model.place_name(crate::PlaceId(invariant.weights[0].0)).to_string();
        diagnostics.push(Diagnostic::new(
            codes::PLACE_INVARIANT,
            Severity::Info,
            element,
            format!("P-invariant: {formula} = {} in every reachable marking", invariant.value),
        ));
    }
    if invariants.len() > MAX_REPORTED {
        diagnostics.push(Diagnostic::new(
            codes::PLACE_INVARIANT,
            Severity::Info,
            model.name(),
            format!("{} further P-invariants not listed", invariants.len() - MAX_REPORTED),
        ));
    }

    // The fuzzed corpus visits unreachable markings, so `ever_enabled` says
    // nothing about reachability here: the invariant certificate alone
    // proves the bound, and the bound alone proves the starvation.
    let mut starved = BTreeSet::new();
    for (ai, activity) in model.activities().iter().enumerate() {
        for &(p, need) in &activity.input_arcs {
            for invariant in invariants {
                let Some(&(_, weight)) = invariant.weights.iter().find(|&&(q, _)| q == p.index())
                else {
                    continue;
                };
                if weight * need > invariant.value {
                    diagnostics.push(Diagnostic::new(
                        codes::INVARIANT_STARVED_ARC,
                        Severity::Error,
                        &activity.name,
                        format!(
                            "input arc demands {need} token(s) from `{}`, but a P-invariant \
                             bounds it by {} from the initial marking; the activity can \
                             never fire",
                            model.place_name(p),
                            invariant.value / weight,
                        ),
                    ));
                    starved.insert(ai);
                    break;
                }
            }
            if starved.contains(&ai) {
                break;
            }
        }
    }
    starved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelBuilder;
    use probdist::{Dist, Exponential};

    fn exp(mean: f64) -> Exponential {
        Exponential::from_mean(mean).unwrap()
    }

    /// A sound two-place repairable component with declared reads.
    fn clean_model() -> crate::Model {
        let mut b = ModelBuilder::new("clean");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .enabling_predicate(move |m| m.tokens(up) == 0)
            .enabling_reads(&[up])
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn clean_model_lints_clean_and_certifies_the_invariant() {
        let report = clean_model().lint();
        report.deny(Severity::Warning).unwrap_or_else(|e| panic!("{e}"));
        assert!(report.has_code(codes::PLACE_INVARIANT));
        let invariant =
            report.diagnostics().iter().find(|d| d.code() == codes::PLACE_INVARIANT).unwrap();
        assert!(invariant.message().contains("`up` + `down` = 1"), "{}", invariant.message());
        assert_eq!(report.max_severity(), Some(Severity::Info));
    }

    #[test]
    fn undeclared_gate_read_is_an_error() {
        let mut b = ModelBuilder::new("undeclared-gate");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        let blocker = b.add_place("blocker", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            // Reads `blocker` but declares only `down`.
            .enabling_predicate(move |m| m.tokens(blocker) == 0)
            .enabling_reads(&[down])
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .output_arc(blocker, 1)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        assert!(report.has_code(codes::UNDECLARED_ENABLING_READ), "{report}");
        assert!(report.deny(Severity::Error).is_err());
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::UNDECLARED_ENABLING_READ)
            .unwrap();
        assert_eq!(d.element(), "fail");
        assert!(d.message().contains("`blocker`"), "{}", d.message());
        // The declared-but-never-read `down` is also surfaced, as Info.
        assert!(report.has_code(codes::UNOBSERVED_DECLARED_READ));
    }

    #[test]
    fn undeclared_timing_read_is_an_error() {
        let mut b = ModelBuilder::new("undeclared-timing");
        let up = b.add_place("up", 2).unwrap();
        let down = b.add_place("down", 0).unwrap();
        let load = b.add_place("load", 1).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            let n = (m.tokens(up) + m.tokens(load)).max(1) as f64;
            Dist::Exponential(Exponential::new(n * 0.01).unwrap())
        })
        .unwrap()
        .input_arc(up, 1)
        // Reads `load` too, but declares only `up`.
        .timing_reads(&[up])
        .output_arc(down, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        b.timed_activity("shed", exp(50.0))
            .unwrap()
            .input_arc(load, 1)
            .output_arc(load, 1)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::UNDECLARED_TIMING_READ)
            .unwrap_or_else(|| panic!("expected SAN002 in {report}"));
        assert_eq!(d.element(), "fail");
        assert!(d.message().contains("`load`"), "{}", d.message());
    }

    #[test]
    fn conservative_gates_and_timings_are_reported_as_info() {
        let mut b = ModelBuilder::new("conservative");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            Dist::Exponential(Exponential::new(m.tokens(up).max(1) as f64 * 0.01).unwrap())
        })
        .unwrap()
        .input_arc(up, 1)
        .output_arc(down, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .enabling_predicate(move |m| m.tokens(up) == 0)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        assert_eq!(
            report
                .diagnostics()
                .iter()
                .filter(|d| d.code() == codes::CONSERVATIVE_DECLARATIONS)
                .count(),
            2,
            "{report}"
        );
        // Conservative is sound: nothing at Warning or above.
        report.deny(Severity::Warning).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn panicking_closures_are_reported_not_propagated() {
        let mut b = ModelBuilder::new("panicky");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity_fn("fail", move |m: &Marking| {
            // Panics whenever `up` is empty — the classic rate-zero bug.
            Dist::Exponential(Exponential::new(m.tokens(up) as f64).unwrap())
        })
        .unwrap()
        .input_arc(up, 1)
        .enabling_predicate(move |m| {
            assert!(m.tokens(down) < 2, "too many failures");
            true
        })
        .output_arc(down, 1)
        .build()
        .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        // The timing function only runs on enabled markings (up >= 1), so
        // it never panics; the predicate runs on fuzzed markings and does.
        assert!(report.has_code(codes::GATE_PANICKED), "{report}");
        assert!(!report.has_code(codes::TIMING_PANICKED), "{report}");
    }

    #[test]
    fn dead_activity_and_disconnected_place_are_warnings() {
        let mut b = ModelBuilder::new("structural");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        let _orphan = b.add_place("orphan", 3).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("never", exp(1.0))
            .unwrap()
            .input_arc(down, 1)
            .enabling_predicate(|_| false)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        let dead = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::DEAD_ACTIVITY)
            .unwrap_or_else(|| panic!("expected SAN010 in {report}"));
        assert_eq!(dead.element(), "never");
        let disconnected = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::DISCONNECTED_PLACE)
            .unwrap_or_else(|| panic!("expected SAN011 in {report}"));
        assert_eq!(disconnected.element(), "orphan");
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        assert!(report.deny(Severity::Warning).is_err());
        report.deny(Severity::Error).unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn duplicate_input_arcs_are_an_underflow_hazard() {
        let mut b = ModelBuilder::new("dup-arcs");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        b.timed_activity("drain", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.timed_activity("refill", exp(1.0))
            .unwrap()
            .input_arc(q, 1)
            .output_arc(p, 2)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::UNDERFLOW_HAZARD)
            .unwrap_or_else(|| panic!("expected SAN012 in {report}"));
        assert_eq!(d.element(), "drain");
        assert_eq!(d.severity(), Severity::Error);
    }

    #[test]
    fn invariant_bound_proves_starved_activities_dead() {
        let mut b = ModelBuilder::new("starved");
        // A conservative cycle holding zero tokens: provably dead, not
        // merely unobserved-dead.
        let a = b.add_place("a", 0).unwrap();
        let c = b.add_place("c", 0).unwrap();
        b.timed_activity("forward", exp(1.0))
            .unwrap()
            .input_arc(a, 1)
            .output_arc(c, 1)
            .build()
            .unwrap();
        b.timed_activity("backward", exp(1.0))
            .unwrap()
            .input_arc(c, 1)
            .output_arc(a, 1)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        assert!(report.has_code(codes::INVARIANT_STARVED_ARC), "{report}");
        // SAN013 subsumes the corpus-level dead-activity warning.
        assert!(!report.has_code(codes::DEAD_ACTIVITY), "{report}");
        assert_eq!(
            report.diagnostics().iter().filter(|d| d.severity() == Severity::Error).count(),
            2,
            "both ends of the cycle are starved: {report}"
        );
    }

    #[test]
    fn reward_lints_catch_dangling_dead_and_panicking_targets() {
        let model = clean_model();
        let up = model.place("up").unwrap();
        let rewards = vec![
            // Fine.
            crate::RewardSpec::time_averaged_rate("availability", move |m| {
                f64::from(u8::from(m.tokens(up) > 0))
            }),
            // Dangling: the model has 2 activities.
            crate::RewardSpec::impulse_total("dangling", crate::ActivityId(9), 1.0),
            // Panics: reads a place id from a larger model.
            crate::RewardSpec::instant_of_time("oob", |m| m.tokens(crate::PlaceId(40)) as f64),
            // Non-finite on every marking.
            crate::RewardSpec::instant_of_time("nan", |_| f64::NAN),
        ];
        let report = model.lint_with(&LintConfig::default(), &rewards);
        let by_code = |code: &str| {
            report
                .diagnostics()
                .iter()
                .find(|d| d.code() == code)
                .unwrap_or_else(|| panic!("expected {code} in {report}"))
                .element()
                .to_string()
        };
        assert_eq!(by_code(codes::UNKNOWN_REWARD_TARGET), "dangling");
        assert_eq!(by_code(codes::REWARD_PANICKED), "oob");
        assert_eq!(by_code(codes::NON_FINITE_REWARD), "nan");
    }

    #[test]
    fn impulse_on_a_dead_activity_is_a_warning() {
        let mut b = ModelBuilder::new("dead-impulse");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("never", exp(1.0))
            .unwrap()
            .input_arc(down, 1)
            .enabling_predicate(|_| false)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let never = model.activity("never").unwrap();
        let rewards = vec![crate::RewardSpec::impulse_total("repairs", never, 1.0)];
        let report = model.lint_with(&LintConfig::default(), &rewards);
        let d = report
            .diagnostics()
            .iter()
            .find(|d| d.code() == codes::IMPULSE_ON_DEAD_ACTIVITY)
            .unwrap_or_else(|| panic!("expected SAN021 in {report}"));
        assert_eq!(d.element(), "repairs");
    }

    #[test]
    fn reports_are_deterministic_and_ordered_by_severity() {
        let mut b = ModelBuilder::new("ordering");
        let p = b.add_place("p", 1).unwrap();
        let orphan = b.add_place("orphan", 0).unwrap();
        let hidden = b.add_place("hidden", 0).unwrap();
        b.timed_activity("spin", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .enabling_predicate(move |m| m.tokens(hidden) == 0)
            .enabling_reads(&[])
            .output_arc(p, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let _ = orphan;
        let first = model.lint();
        let second = model.lint();
        assert_eq!(first, second);
        let severities: Vec<Severity> =
            first.diagnostics().iter().map(Diagnostic::severity).collect();
        let mut sorted = severities.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(severities, sorted, "most severe first: {first}");
        assert!(first.has_code(codes::UNDECLARED_ENABLING_READ));
        assert!(first.has_code(codes::DISCONNECTED_PLACE));
    }

    #[test]
    fn severity_parses_and_orders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::parse("ERROR"), Some(Severity::Error));
        assert_eq!(Severity::parse("warn"), Some(Severity::Warning));
        assert_eq!(Severity::parse("info"), Some(Severity::Info));
        assert_eq!(Severity::parse("fatal"), None);
        assert_eq!(Severity::Error.name(), "error");
    }

    #[test]
    fn reports_serialise_with_a_stable_schema() {
        let report = clean_model().lint();
        let json = serde::to_json(&report);
        for key in ["\"model\"", "\"probes\"", "\"clean\"", "\"max_severity\"", "\"diagnostics\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let d = &report.diagnostics()[0];
        let dj = serde::to_json(d);
        for key in ["\"code\"", "\"severity\"", "\"element\"", "\"message\""] {
            assert!(dj.contains(key), "missing {key} in {dj}");
        }
        assert!(format!("{d}").starts_with(d.code()));
    }

    #[test]
    fn deny_reports_the_offending_diagnostics() {
        let mut b = ModelBuilder::new("deny");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        b.timed_activity("drain", exp(1.0))
            .unwrap()
            .input_arc(p, 1)
            .input_arc(p, 1)
            .output_arc(q, 1)
            .build()
            .unwrap();
        b.timed_activity("refill", exp(1.0))
            .unwrap()
            .input_arc(q, 1)
            .output_arc(p, 2)
            .build()
            .unwrap();
        let report = b.build().unwrap().lint();
        match report.deny(Severity::Error) {
            Err(SanError::LintRejected { model, rejected, details }) => {
                assert_eq!(model, "deny");
                // The duplicate arc is a hazard, and the invariant
                // `p + 2*q = 1` proves `refill` (which needs q >= 1) dead.
                assert_eq!(rejected, 2);
                assert!(details.contains("SAN012"), "{details}");
                assert!(details.contains("SAN013"), "{details}");
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
    }

    #[test]
    fn the_fuzzed_corpus_is_seeded_and_bounded() {
        let corpus = probe_corpus(&[5, 0, 1], &LintConfig { probes: 100, seed: 7 });
        assert_eq!(corpus.len(), 100);
        assert_eq!(corpus[0], vec![5, 0, 1]);
        let again = probe_corpus(&[5, 0, 1], &LintConfig { probes: 100, seed: 7 });
        assert_eq!(corpus, again);
        let other = probe_corpus(&[5, 0, 1], &LintConfig { probes: 100, seed: 8 });
        assert_ne!(corpus, other);
        // Zero probes still yields the initial marking.
        let minimal = probe_corpus(&[2], &LintConfig { probes: 0, seed: 7 });
        assert_eq!(minimal, vec![vec![2]]);
    }
}
