//! A stochastic activity network (SAN) formalism and discrete-event
//! simulation engine, modelled after the Möbius tool used in the paper.
//!
//! The paper builds its cluster-file-system dependability model as a
//! replicate/join composition of stochastic activity networks and solves it
//! by simulation, reporting reward variables (availability, cluster utility,
//! disk-replacement rate) with 95 % confidence intervals. This crate
//! provides the same building blocks:
//!
//! * [`ModelBuilder`] / [`Model`] — places (integer markings), timed and
//!   instantaneous activities with general firing distributions, input and
//!   output gates (arbitrary predicates and marking transformations), and
//!   probabilistic cases.
//! * [`compose`] — replicate/join helpers that merge submodels while
//!   sharing selected places, mirroring Möbius' composed-model tree
//!   (Figure 1 of the paper).
//! * [`beowulf`] — a ready-made composed workload: the Kirsal & Ever
//!   Beowulf head-plus-workers performability model, with declared
//!   dependency read sets (pinned sound by its differential test; being a
//!   4-activity model, plain runs auto-select the naive kernel).
//! * [`Simulator`] — a discrete-event executor with restart (resampling)
//!   semantics for activities whose enabling condition or distribution
//!   changes.
//! * [`reward`] — rate rewards (time-averaged, accumulated, instant-of-time)
//!   and impulse rewards (per activity completion).
//! * [`Experiment`] — replication manager that runs many independent
//!   replications (optionally in parallel) and reports each reward with a
//!   Student-t confidence interval, with an optional relative-precision
//!   stopping rule.
//! * [`rare`] — importance sampling with failure biasing: exponential rate
//!   tilting of failure activities, the per-replication likelihood ratio
//!   accumulated event by event through the compiled reward table (so both
//!   kernels support it identically), and weighted estimation that reaches
//!   probabilities naive replication cannot resolve.
//! * [`lint`] — static analysis of compiled models ([`Model::lint`]):
//!   declaration-soundness probing of gate and timing closures against a
//!   recording marking, structural checks (dead activities, disconnected
//!   places, underflow hazards, P-invariants by integer elimination), and
//!   reward linting, reported as typed `SAN0xx` diagnostics with a
//!   configurable deny level. Debug builds run it automatically before
//!   [`Simulator::run`].
//! * [`reach`] — the semantic static-analysis tier ([`Model::analyze`]):
//!   exhaustive reachable-marking-graph exploration under a budget,
//!   classifying boundedness, ergodicity (SCC condensation), and timing
//!   (all-exponential or the named offenders), with a typed
//!   [`SolverAdmissibility`] verdict and — for admissible models — exact
//!   sparse generator assembly into a [`ctmc::SparseCtmc`] solvable
//!   without simulation.
//!
//! # The event-calendar engine
//!
//! [`Simulator::run`] executes on an event-calendar kernel whose per-event
//! cost is `O(log A + affected)` in the number of activities `A`, instead
//! of the `O(A + R)` full rescan of early versions (retained as
//! [`Simulator::run_reference`] for differential testing):
//!
//! * The future-event list is an indexed binary min-heap keyed by
//!   `(firing time, activity index)`; the index tie-break reproduces the
//!   linear scan's ordering for simultaneous firings exactly.
//! * A place→activity incidence index, built once per model, combined with
//!   the marking's dirty-place change log, re-examines after each event
//!   only the activities whose enabling (or sampled delay) the event's
//!   writes could actually have affected — in ascending index order, so the
//!   RNG draw sequence and therefore every statistic is bit-identical to
//!   the full rescan.
//! * Reward specifications are compiled once per run into a partitioned
//!   table (impulse rewards bucketed by activity, rate rewards as a dense
//!   slice, names interned into one shared `Arc`), so a replication's
//!   [`RunResult`] is a plain `Vec<f64>`.
//!
//! Gate predicates and marking-dependent distributions are opaque closures,
//! so by default the scheduler treats them conservatively (re-examined
//! after every event — exactly the legacy behaviour, bit for bit). Models
//! can sharpen this with two declarations on
//! [`ActivityBuilder`]: [`ActivityBuilder::enabling_reads`] (which places
//! the gate predicates read) and [`ActivityBuilder::timing_reads`] (which
//! places the timing distribution reads; also refines the restart policy to
//! "keep the sampled delay unless one of these places is written" — the
//! standard reactivation rule, law-equivalent for exponential timings).
//! Both kernels honour declarations identically, and gate *writes* never
//! need declaring — they are tracked exactly through the marking change
//! log.
//!
//! # Example: a single repairable component
//!
//! ```
//! use sanet::{ModelBuilder, Experiment, reward::RewardSpec};
//! use probdist::{Exponential, Deterministic};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ModelBuilder::new("component");
//! let up = b.add_place("up", 1)?;
//! let down = b.add_place("down", 0)?;
//!
//! // Fail after an exponential delay with a 1000-hour mean.
//! b.timed_activity("fail", Exponential::from_mean(1000.0)?)?
//!     .input_arc(up, 1)
//!     .output_arc(down, 1)
//!     .build()?;
//! // Deterministic 10-hour repair.
//! b.timed_activity("repair", Deterministic::new(10.0)?)?
//!     .input_arc(down, 1)
//!     .output_arc(up, 1)
//!     .build()?;
//!
//! let model = b.build()?;
//! let availability = RewardSpec::time_averaged_rate("availability", move |m| {
//!     if m.tokens(up) > 0 { 1.0 } else { 0.0 }
//! });
//!
//! let mut experiment = Experiment::new(model, 8760.0); // one year
//! experiment.add_reward(availability);
//! let summary = experiment.run(64, 42)?;
//! let a = summary.reward("availability")?.interval.point;
//! assert!(a > 0.95 && a < 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beowulf;
mod calendar;
pub mod compose;
pub mod ctmc;
mod engine;
mod error;
pub mod lint;
mod marking;
mod model;
pub mod rare;
pub mod reach;
mod reference;
mod replication;
pub mod reward;

pub use engine::{RunResult, RunScratch, Simulator, TraceEvent};
pub use error::SanError;
pub use lint::{Diagnostic, LintConfig, LintReport, Severity};
pub use marking::{Marking, PlaceId};
pub use model::{ActivityBuilder, ActivityId, Model, ModelBuilder, Timing};
pub use reach::{GeneratorAssembly, ReachConfig, ReachReport, SolverAdmissibility};
pub use replication::{Experiment, RewardEstimate, RunSummary, StoppingRule};
pub use reward::RewardSpec;

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Model>();
        assert_send_sync::<Marking>();
        assert_send_sync::<SanError>();
        assert_send_sync::<RunResult>();
    }
}
