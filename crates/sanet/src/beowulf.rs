//! Composed Beowulf-cluster performability model, after Kirsal & Ever's
//! *"Approximate Solution Approach and Performability Evaluation of Large
//! Scale Beowulf Clusters"*.
//!
//! A Beowulf cluster is a head node dispatching work to `N` identical
//! worker nodes. Both fail and are repaired; service degrades gracefully
//! with the number of operational workers and stops entirely while the
//! head node is down (workers cannot receive work). The *performability*
//! measure is the time-averaged fraction of nominal capacity actually
//! delivered — the reward-weighted availability Kirsal & Ever solve
//! approximately and this module estimates by simulating the composed SAN:
//!
//! * `head_up` / `head_down` — the head node's fail/repair cycle
//!   (exponential failures with mean [`BeowulfConfig::head_mtbf_hours`],
//!   repairs of mean [`BeowulfConfig::head_repair_hours`]).
//! * `workers_up` / `workers_down` — the worker population. Worker
//!   failures are modelled as one aggregate activity whose exponential
//!   rate is `workers_up · λ` (marking-dependent timing, declared via
//!   [`crate::ActivityBuilder::timing_reads`]); repairs as an aggregate
//!   activity of rate `min(workers_down, repair_crews) · μ` — the limited
//!   repair-crew queue of the Kirsal & Ever model. Repairs are dispatched
//!   from the head node, so the repair activity carries a gate enabled
//!   only while `head_up` holds (declared via
//!   [`crate::ActivityBuilder::enabling_reads`]).
//!
//! Every activity declares its enabling and timing read sets, which makes
//! the model eligible for the event-calendar kernel's incidence-driven
//! fast path (an event re-examines only the activities whose declared
//! reads it wrote) and pins those declarations sound via the in-crate
//! differential test. Note that at its 4-activity size
//! [`crate::Simulator::run`] auto-selects the naive kernel — the
//! small-model crossover — so the calendar fast path is exercised by
//! [`crate::Simulator::run_traced`], the differential suite, and any
//! larger composition embedding this model, not by plain production runs.
//!
//! The parameter axes (all units in hours or counts):
//!
//! | parameter | meaning | unit |
//! |---|---|---|
//! | `workers` | worker-node count `N` | nodes |
//! | `head_mtbf_hours` | mean time between head-node failures | h |
//! | `head_repair_hours` | mean head-node repair time | h |
//! | `worker_mtbf_hours` | mean time between failures of one worker | h |
//! | `worker_repair_hours` | mean repair time of one worker | h |
//! | `repair_crews` | simultaneous worker repairs | crews |

use probdist::{Dist, Exponential};
use serde::{Deserialize, Serialize};

use crate::reward::RewardSpec;
use crate::{Marking, Model, ModelBuilder, PlaceId, SanError};

/// Parameters of a Beowulf head-plus-workers cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BeowulfConfig {
    /// Number of worker nodes (`N`).
    pub workers: u32,
    /// Mean time between head-node failures, hours.
    pub head_mtbf_hours: f64,
    /// Mean head-node repair time, hours.
    pub head_repair_hours: f64,
    /// Mean time between failures of a single worker, hours.
    pub worker_mtbf_hours: f64,
    /// Mean repair time of a single worker (one crew working), hours.
    pub worker_repair_hours: f64,
    /// Number of repair crews: at most this many workers are repaired
    /// simultaneously (the queueing bottleneck of the Kirsal & Ever model).
    pub repair_crews: u32,
}

impl Default for BeowulfConfig {
    /// A mid-size commodity cluster: 64 workers with 5 000-hour MTBF and
    /// 12-hour repairs from one crew; a sturdier head node (10 000-hour
    /// MTBF, 8-hour repair).
    fn default() -> Self {
        BeowulfConfig {
            workers: 64,
            head_mtbf_hours: 10_000.0,
            head_repair_hours: 8.0,
            worker_mtbf_hours: 5_000.0,
            worker_repair_hours: 12.0,
            repair_crews: 1,
        }
    }
}

impl BeowulfConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] naming the offending
    /// parameter: zero workers or crews, or a non-positive/non-finite
    /// MTBF or repair time.
    pub fn validate(&self) -> Result<(), SanError> {
        if self.workers == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "Beowulf cluster needs at least one worker".into(),
            });
        }
        if self.repair_crews == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "Beowulf cluster needs at least one repair crew".into(),
            });
        }
        for (name, value) in [
            ("head_mtbf_hours", self.head_mtbf_hours),
            ("head_repair_hours", self.head_repair_hours),
            ("worker_mtbf_hours", self.worker_mtbf_hours),
            ("worker_repair_hours", self.worker_repair_hours),
        ] {
            if !(value.is_finite() && value > 0.0) {
                return Err(SanError::InvalidExperiment {
                    reason: format!("Beowulf {name} must be positive and finite, got {value}"),
                });
            }
        }
        Ok(())
    }
}

/// The built Beowulf model: the SAN plus the place handles rewards read.
#[derive(Debug, Clone)]
pub struct BeowulfModel {
    /// The underlying stochastic activity network.
    pub model: Model,
    /// Head node operational (1) or not (0).
    pub head_up: PlaceId,
    /// Number of operational workers.
    pub workers_up: PlaceId,
    /// Number of failed workers (repair queue length).
    pub workers_down: PlaceId,
    /// The configuration the model was built from.
    pub config: BeowulfConfig,
}

/// Reward name: delivered fraction of nominal capacity (performability).
pub const PERFORMABILITY: &str = "performability";
/// Reward name: service availability (head up and at least one worker up).
pub const SERVICE_AVAILABILITY: &str = "service_availability";
/// Reward name: head-node availability.
pub const HEAD_AVAILABILITY: &str = "head_availability";
/// Reward name: time-averaged number of operational workers.
pub const MEAN_WORKERS_UP: &str = "mean_workers_up";

impl BeowulfModel {
    /// The standard reward set of the performability analysis:
    ///
    /// * [`PERFORMABILITY`] — time-averaged `workers_up / N` while the head
    ///   is up, `0` otherwise: the delivered fraction of nominal capacity.
    /// * [`SERVICE_AVAILABILITY`] — time-averaged indicator of "the
    ///   cluster serves at all" (head up, ≥ 1 worker up).
    /// * [`HEAD_AVAILABILITY`] — time-averaged head-up indicator.
    /// * [`MEAN_WORKERS_UP`] — time-averaged operational worker count.
    pub fn rewards(&self) -> Vec<RewardSpec> {
        let head = self.head_up;
        let up = self.workers_up;
        let nominal = self.config.workers as f64;
        vec![
            RewardSpec::time_averaged_rate(PERFORMABILITY, move |m: &Marking| {
                if m.tokens(head) > 0 {
                    m.tokens(up) as f64 / nominal
                } else {
                    0.0
                }
            }),
            RewardSpec::time_averaged_rate(SERVICE_AVAILABILITY, move |m: &Marking| {
                if m.tokens(head) > 0 && m.tokens(up) > 0 {
                    1.0
                } else {
                    0.0
                }
            }),
            RewardSpec::time_averaged_rate(HEAD_AVAILABILITY, move |m: &Marking| {
                if m.tokens(head) > 0 {
                    1.0
                } else {
                    0.0
                }
            }),
            RewardSpec::time_averaged_rate(MEAN_WORKERS_UP, move |m: &Marking| m.tokens(up) as f64),
        ]
    }
}

/// Builds the composed head-plus-workers SAN for `config`.
///
/// # Errors
///
/// Returns [`SanError::InvalidExperiment`] for an invalid configuration and
/// propagates model-construction errors.
pub fn build_beowulf_model(config: &BeowulfConfig) -> Result<BeowulfModel, SanError> {
    config.validate()?;
    let mut b = ModelBuilder::new(format!("beowulf/{}workers", config.workers));

    let head_up = b.add_place("head_up", 1)?;
    let head_down = b.add_place("head_down", 0)?;
    let workers_up = b.add_place("workers_up", config.workers as u64)?;
    let workers_down = b.add_place("workers_down", 0)?;

    // Head-node fail/repair cycle. Plain input-arc enabling — the arc reads
    // are structural, so the calendar engine already knows them.
    b.timed_activity("head_fail", Exponential::from_mean(config.head_mtbf_hours)?)?
        .input_arc(head_up, 1)
        .output_arc(head_down, 1)
        .build()?;
    b.timed_activity("head_repair", Exponential::from_mean(config.head_repair_hours)?)?
        .input_arc(head_down, 1)
        .output_arc(head_up, 1)
        .build()?;

    // Aggregate worker failures: exponential with rate `workers_up · λ`.
    // The distribution reads only `workers_up`, and per-worker lifetimes
    // are memoryless, so declaring the timing read keeps the sampled delay
    // valid until the worker population itself changes — the calendar
    // fast path.
    let worker_rate = 1.0 / config.worker_mtbf_hours;
    b.timed_activity_fn("worker_fail", move |m: &Marking| {
        let n = m.tokens(workers_up).max(1) as f64;
        Dist::Exponential(Exponential::new(n * worker_rate).expect("positive rate"))
    })?
    .timing_reads(&[workers_up])
    .input_arc(workers_up, 1)
    .output_arc(workers_down, 1)
    .build()?;

    // Aggregate worker repairs: at most `repair_crews` crews work in
    // parallel, each at rate μ, and repairs are dispatched from the head
    // node — the gate (with its declared read set) keeps the repair queue
    // frozen while the head is down.
    let repair_rate = 1.0 / config.worker_repair_hours;
    let crews = config.repair_crews as u64;
    b.timed_activity_fn("worker_repair", move |m: &Marking| {
        let busy = m.tokens(workers_down).min(crews).max(1) as f64;
        Dist::Exponential(Exponential::new(busy * repair_rate).expect("positive rate"))
    })?
    .timing_reads(&[workers_down])
    .enabling_predicate(move |m: &Marking| m.tokens(head_up) > 0)
    .enabling_reads(&[head_up])
    .input_arc(workers_down, 1)
    .output_arc(workers_up, 1)
    .build()?;

    let model = b.build()?;
    Ok(BeowulfModel { model, head_up, workers_up, workers_down, config: *config })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Experiment;

    #[test]
    fn config_validation_names_the_offending_parameter() {
        assert!(BeowulfConfig::default().validate().is_ok());
        let c = BeowulfConfig { workers: 0, ..BeowulfConfig::default() };
        assert!(c.validate().is_err());
        let c = BeowulfConfig { repair_crews: 0, ..BeowulfConfig::default() };
        assert!(c.validate().is_err());
        let c = BeowulfConfig { worker_mtbf_hours: 0.0, ..BeowulfConfig::default() };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("worker_mtbf_hours"), "{err}");
        let c = BeowulfConfig { head_repair_hours: f64::NAN, ..BeowulfConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn model_structure_matches_the_config() {
        let config = BeowulfConfig { workers: 16, ..BeowulfConfig::default() };
        let bw = build_beowulf_model(&config).unwrap();
        assert_eq!(bw.model.num_activities(), 4);
        let marking = bw.model.initial_marking();
        assert_eq!(marking.tokens(bw.head_up), 1);
        assert_eq!(marking.tokens(bw.workers_up), 16);
        assert_eq!(marking.tokens(bw.workers_down), 0);
        assert!(bw.model.activity("worker_fail").is_some());
        assert!(bw.model.activity("head_repair").is_some());
    }

    #[test]
    fn performability_approaches_the_birth_death_steady_state() {
        // With an always-up head (huge MTBF) and one repair crew, the
        // worker population is an M/M/1-repair birth–death chain. For
        // λ = 1/1000, μ = 1/10 and N = 8 the utilisation is high enough
        // that E[workers up]/N lands near 1 − Nλ/μ·(1/N)… rather than
        // derive the closed form, pin against a tight numeric band
        // obtained from long-run simulation.
        let config = BeowulfConfig {
            workers: 8,
            head_mtbf_hours: 1e12,
            head_repair_hours: 1.0,
            worker_mtbf_hours: 1000.0,
            worker_repair_hours: 10.0,
            repair_crews: 8,
        };
        let bw = build_beowulf_model(&config).unwrap();
        let mut experiment = Experiment::new(bw.model.clone(), 200_000.0);
        for reward in bw.rewards() {
            experiment.add_reward(reward);
        }
        let summary = experiment.run(16, 7).unwrap();
        // With as many crews as workers each node is an independent
        // two-state unit: availability 1000/1010.
        let expected = 1000.0 / 1010.0;
        let perf = summary.reward(PERFORMABILITY).unwrap().interval.point;
        assert!((perf - expected).abs() < 0.005, "performability {perf} vs {expected}");
        let head = summary.reward(HEAD_AVAILABILITY).unwrap().interval.point;
        assert!((head - 1.0).abs() < 1e-9);
        let mean_up = summary.reward(MEAN_WORKERS_UP).unwrap().interval.point;
        assert!((mean_up - 8.0 * expected).abs() < 0.05, "mean workers up {mean_up}");
    }

    #[test]
    fn head_downtime_suppresses_performability_below_worker_availability() {
        // A fragile head (10 % downtime) caps performability even with
        // perfect workers.
        let config = BeowulfConfig {
            workers: 4,
            head_mtbf_hours: 90.0,
            head_repair_hours: 10.0,
            worker_mtbf_hours: 1e12,
            worker_repair_hours: 1.0,
            repair_crews: 1,
        };
        let bw = build_beowulf_model(&config).unwrap();
        let mut experiment = Experiment::new(bw.model.clone(), 100_000.0);
        for reward in bw.rewards() {
            experiment.add_reward(reward);
        }
        let summary = experiment.run(12, 3).unwrap();
        let perf = summary.reward(PERFORMABILITY).unwrap().interval.point;
        let head = summary.reward(HEAD_AVAILABILITY).unwrap().interval.point;
        assert!((head - 0.9).abs() < 0.02, "head availability {head}");
        assert!((perf - head).abs() < 0.02, "performability {perf} tracks head availability");
        let service = summary.reward(SERVICE_AVAILABILITY).unwrap().interval.point;
        assert!((service - head).abs() < 0.02);
    }

    #[test]
    fn fewer_repair_crews_degrade_performability() {
        let base = BeowulfConfig {
            workers: 32,
            head_mtbf_hours: 1e12,
            head_repair_hours: 1.0,
            worker_mtbf_hours: 200.0,
            worker_repair_hours: 20.0,
            repair_crews: 1,
        };
        let many = BeowulfConfig { repair_crews: 16, ..base };
        let run = |config: &BeowulfConfig| {
            let bw = build_beowulf_model(config).unwrap();
            let mut experiment = Experiment::new(bw.model.clone(), 50_000.0);
            for reward in bw.rewards() {
                experiment.add_reward(reward);
            }
            experiment.run(8, 13).unwrap().reward(PERFORMABILITY).unwrap().interval.point
        };
        let one_crew = run(&base);
        let many_crews = run(&many);
        assert!(
            many_crews > one_crew + 0.05,
            "16 crews ({many_crews}) should clearly beat 1 crew ({one_crew})"
        );
    }

    /// The declared read sets must be sound. This used to be pinned by an
    /// 8-seed trace differential against the reference kernel; the linter
    /// now machine-checks the same property directly (and the linter
    /// itself is pinned against the kernels by the retained differential
    /// in `tests/engine_differential.rs`).
    #[test]
    fn declared_reads_lint_clean() {
        let config = BeowulfConfig {
            workers: 12,
            head_mtbf_hours: 500.0,
            head_repair_hours: 24.0,
            worker_mtbf_hours: 100.0,
            worker_repair_hours: 30.0,
            repair_crews: 2,
        };
        let bw = build_beowulf_model(&config).unwrap();
        let report = bw.model.lint_with(&crate::lint::LintConfig::default(), &bw.rewards());
        report.deny(crate::lint::Severity::Warning).unwrap_or_else(|e| panic!("{e}"));
        // The pair structure is certified, not just observed: both the
        // head and the worker pool carry a P-invariant.
        assert!(report.has_code(crate::lint::codes::PLACE_INVARIANT));
    }
}
