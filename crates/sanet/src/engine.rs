use std::collections::HashMap;

use probdist::{Distribution, SimRng};

use crate::model::Timing;
use crate::reward::{ImpulseKind, RewardKind, RewardSpec, RewardVariant};
use crate::{ActivityId, Marking, Model, SanError};

/// Maximum number of zero-delay firings processed at a single time point
/// before the simulator concludes the model has an unstable loop of
/// instantaneous activities.
const MAX_INSTANT_FIRINGS: usize = 100_000;

/// The estimated reward values produced by a single simulation replication.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    values: HashMap<String, f64>,
    /// Number of activity completions processed.
    pub events: u64,
    /// Simulated time at which the run ended (the horizon).
    pub end_time: f64,
}

impl RunResult {
    /// The value of the named reward.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] if the reward was not registered
    /// for the run.
    pub fn reward(&self, name: &str) -> Result<f64, SanError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| SanError::UnknownReward { name: name.to_string() })
    }

    /// Iterates over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// One entry of a simulation trace (activity completion).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the completion (hours).
    pub time: f64,
    /// The activity that completed.
    pub activity: ActivityId,
    /// The activity's name.
    pub activity_name: String,
    /// Index of the probabilistic case chosen.
    pub case: usize,
}

/// Discrete-event simulator for a [`Model`].
///
/// The execution semantics follow Möbius' simulator:
///
/// * Instantaneous activities complete immediately and have priority over
///   timed activities; a bounded cascade of them is processed at each time
///   point.
/// * A timed activity samples its firing delay when it becomes enabled
///   (activation). If it becomes disabled before firing, the sample is
///   discarded. If the marking changes while it stays enabled, the sample is
///   kept unless the activity requests resampling (restart policy) or has a
///   marking-dependent distribution.
/// * Rate rewards are integrated between events; impulse rewards accumulate
///   on activity completion. An optional warm-up period excludes the initial
///   transient from both.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    model: &'m Model,
}

#[derive(Debug, Clone, Copy)]
struct ScheduledFiring {
    time: f64,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator bound to `model`.
    pub fn new(model: &'m Model) -> Self {
        Simulator { model }
    }

    /// Runs one replication until `horizon` hours and returns the reward
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] for a non-positive horizon,
    /// [`SanError::UnknownId`] if a reward references an activity that does
    /// not belong to the model, and
    /// [`SanError::UnstableInstantaneousLoop`] if instantaneous activities
    /// never stabilise.
    pub fn run(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<RunResult, SanError> {
        self.run_inner(rewards, horizon, warmup, rng, None)
    }

    /// Like [`Simulator::run`], but also records every activity completion.
    ///
    /// Intended for debugging and for tests that assert on event orderings;
    /// tracing allocates per event, so do not use it for production
    /// experiments.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<(RunResult, Vec<TraceEvent>), SanError> {
        let mut trace = Vec::new();
        let result = self.run_inner(rewards, horizon, warmup, rng, Some(&mut trace))?;
        Ok((result, trace))
    }

    fn run_inner(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
        mut trace: Option<&mut Vec<TraceEvent>>,
    ) -> Result<RunResult, SanError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("simulation horizon must be positive and finite, got {horizon}"),
            });
        }
        if !(0.0..horizon).contains(&warmup) {
            return Err(SanError::InvalidExperiment {
                reason: format!("warm-up ({warmup}) must lie in [0, horizon)"),
            });
        }
        // Validate impulse-reward activity references up front.
        for spec in rewards {
            if let RewardVariant::Impulse { activity, .. } = &spec.variant {
                if activity.index() >= self.model.num_activities() {
                    return Err(SanError::UnknownId {
                        what: format!(
                            "activity #{} referenced by reward `{}`",
                            activity.index(),
                            spec.name
                        ),
                    });
                }
            }
        }

        let model = self.model;
        let mut marking = model.initial_marking();
        let mut now = 0.0_f64;
        let mut events = 0u64;
        let observed = horizon - warmup;

        // Per-reward accumulators.
        let mut rate_integrals = vec![0.0_f64; rewards.len()];
        let mut impulse_totals = vec![0.0_f64; rewards.len()];

        // Scheduled firing time per timed activity.
        let mut schedule: Vec<Option<ScheduledFiring>> = vec![None; model.num_activities()];

        // Fire any instantaneous activities enabled in the initial marking,
        // then schedule timed activities.
        fire_instantaneous(
            model,
            &mut marking,
            rng,
            &mut trace,
            &mut events,
            now,
            rewards,
            &mut impulse_totals,
            warmup,
        )?;
        refresh_schedule(model, &marking, &mut schedule, rng, now, true);

        loop {
            // Find the earliest scheduled completion.
            let next = schedule
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.map(|f| (f.time, i)))
                .min_by(|a, b| a.partial_cmp(b).expect("firing times are finite"));

            let (fire_time, activity_idx) = match next {
                Some((t, i)) if t <= horizon => (t, i),
                _ => {
                    // No more events before the horizon: accumulate rewards
                    // for the remaining interval and stop.
                    accumulate_rate_rewards(
                        rewards,
                        &marking,
                        now,
                        horizon,
                        warmup,
                        &mut rate_integrals,
                    );
                    now = horizon;
                    break;
                }
            };

            // Integrate rate rewards over [now, fire_time].
            accumulate_rate_rewards(rewards, &marking, now, fire_time, warmup, &mut rate_integrals);
            now = fire_time;

            // Fire the activity.
            let activity_id = ActivityId(activity_idx);
            let case = fire_activity(model, activity_id, &mut marking, rng);
            schedule[activity_idx] = None;
            events += 1;
            if now >= warmup {
                credit_impulses(rewards, activity_id, &mut impulse_totals);
            }
            if let Some(trace) = trace.as_deref_mut() {
                trace.push(TraceEvent {
                    time: now,
                    activity: activity_id,
                    activity_name: model.activity_name(activity_id).to_string(),
                    case,
                });
            }

            // Process any instantaneous cascade triggered by the firing.
            fire_instantaneous(
                model,
                &mut marking,
                rng,
                &mut trace,
                &mut events,
                now,
                rewards,
                &mut impulse_totals,
                warmup,
            )?;

            // Update the timed-activity schedule after the marking change.
            refresh_schedule(model, &marking, &mut schedule, rng, now, false);
        }

        // Assemble reward values.
        let mut values = HashMap::with_capacity(rewards.len());
        for (i, spec) in rewards.iter().enumerate() {
            let value = match &spec.variant {
                RewardVariant::Rate { function, kind } => match kind {
                    RewardKind::TimeAveraged => rate_integrals[i] / observed,
                    RewardKind::Accumulated => rate_integrals[i],
                    RewardKind::InstantOfTime => function(&marking),
                },
                RewardVariant::Impulse { kind, .. } => match kind {
                    ImpulseKind::Total => impulse_totals[i],
                    ImpulseKind::PerHour => impulse_totals[i] / observed,
                },
            };
            values.insert(spec.name.clone(), value);
        }

        Ok(RunResult { values, events, end_time: now })
    }
}

/// Integrates every rate reward over `[from, to]`, clipped to the
/// post-warm-up window.
fn accumulate_rate_rewards(
    rewards: &[RewardSpec],
    marking: &Marking,
    from: f64,
    to: f64,
    warmup: f64,
    integrals: &mut [f64],
) {
    let start = from.max(warmup);
    if to <= start {
        return;
    }
    let dt = to - start;
    for (i, spec) in rewards.iter().enumerate() {
        if let RewardVariant::Rate { function, kind } = &spec.variant {
            if matches!(kind, RewardKind::TimeAveraged | RewardKind::Accumulated) {
                integrals[i] += function(marking) * dt;
            }
        }
    }
}

/// Adds impulse amounts for rewards attached to `completed`.
fn credit_impulses(rewards: &[RewardSpec], completed: ActivityId, totals: &mut [f64]) {
    for (i, spec) in rewards.iter().enumerate() {
        if let RewardVariant::Impulse { activity, amount, .. } = &spec.variant {
            if *activity == completed {
                totals[i] += amount;
            }
        }
    }
}

/// Applies the marking changes of one activity completion and returns the
/// chosen case index.
fn fire_activity(model: &Model, id: ActivityId, marking: &mut Marking, rng: &mut SimRng) -> usize {
    let activity = model.activity_ref(id);
    // Input side: arcs consume tokens, gates apply their functions.
    for &(place, tokens) in &activity.input_arcs {
        marking.remove_tokens(place, tokens);
    }
    for gate in &activity.input_gates {
        (gate.function)(marking);
    }
    // Choose a case.
    let case_idx = if activity.cases.len() == 1 {
        0
    } else {
        let u = rng.uniform01();
        let mut acc = 0.0;
        let mut chosen = activity.cases.len() - 1;
        for (i, case) in activity.cases.iter().enumerate() {
            acc += case.probability;
            if u < acc {
                chosen = i;
                break;
            }
        }
        chosen
    };
    let case = &activity.cases[case_idx];
    for &(place, tokens) in &case.output_arcs {
        marking.add_tokens(place, tokens);
    }
    for gate in &case.output_gates {
        (gate.function)(marking);
    }
    case_idx
}

/// Fires enabled instantaneous activities until none remain enabled,
/// returning an error if the cascade does not stabilise.
#[allow(clippy::too_many_arguments)]
fn fire_instantaneous(
    model: &Model,
    marking: &mut Marking,
    rng: &mut SimRng,
    trace: &mut Option<&mut Vec<TraceEvent>>,
    events: &mut u64,
    now: f64,
    rewards: &[RewardSpec],
    impulse_totals: &mut [f64],
    warmup: f64,
) -> Result<(), SanError> {
    let mut firings = 0usize;
    loop {
        let next = model
            .activities()
            .iter()
            .enumerate()
            .find(|(_, a)| matches!(a.timing, Timing::Instantaneous) && a.is_enabled(marking))
            .map(|(i, _)| i);
        let Some(idx) = next else { return Ok(()) };
        let id = ActivityId(idx);
        let case = fire_activity(model, id, marking, rng);
        *events += 1;
        if now >= warmup {
            credit_impulses(rewards, id, impulse_totals);
        }
        if let Some(trace) = trace.as_deref_mut() {
            trace.push(TraceEvent {
                time: now,
                activity: id,
                activity_name: model.activity_name(id).to_string(),
                case,
            });
        }
        firings += 1;
        if firings > MAX_INSTANT_FIRINGS {
            return Err(SanError::UnstableInstantaneousLoop { firings });
        }
    }
}

/// Brings the timed-activity schedule in line with the current marking:
/// disabled activities lose their sample, newly enabled activities sample a
/// delay, and enabled activities with the restart policy (or marking-
/// dependent timing) resample.
fn refresh_schedule(
    model: &Model,
    marking: &Marking,
    schedule: &mut [Option<ScheduledFiring>],
    rng: &mut SimRng,
    now: f64,
    initial: bool,
) {
    for (i, activity) in model.activities().iter().enumerate() {
        let timing = &activity.timing;
        if matches!(timing, Timing::Instantaneous) {
            continue;
        }
        let enabled = activity.is_enabled(marking);
        if !enabled {
            schedule[i] = None;
            continue;
        }
        let needs_sample = schedule[i].is_none() || (!initial && activity.resample_on_change);
        if needs_sample {
            let delay = match timing {
                Timing::Timed(dist) => dist.sample(rng),
                Timing::TimedFn(f) => f(marking).sample(rng),
                Timing::Instantaneous => unreachable!("filtered above"),
            };
            schedule[i] = Some(ScheduledFiring { time: now + delay });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::ModelBuilder;
    use probdist::{Deterministic, Dist, Exponential};

    fn exp(mean: f64) -> Exponential {
        Exponential::from_mean(mean).unwrap()
    }

    fn det(v: f64) -> Deterministic {
        Deterministic::new(v).unwrap()
    }

    /// A single repairable unit: deterministic failure at 10 h, deterministic
    /// repair taking 2 h. Over a 24-hour horizon the unit is down during
    /// [10, 12) and [22, 24), i.e. availability 20/24; the second repair
    /// completes exactly at the horizon and is still counted.
    #[test]
    fn deterministic_failure_repair_cycle_availability() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", det(10.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        let repair = b
            .timed_activity("repair", det(2.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();

        let rewards = vec![
            RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            ),
            RewardSpec::accumulated_rate(
                "downtime",
                move |m| if m.tokens(down) > 0 { 1.0 } else { 0.0 },
            ),
            RewardSpec::impulse_total("repairs", repair, 1.0),
            RewardSpec::instant_of_time("up_at_end", move |m| m.tokens(up) as f64),
        ];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let result = sim.run(&rewards, 24.0, 0.0, &mut rng).unwrap();

        assert!((result.reward("avail").unwrap() - 20.0 / 24.0).abs() < 1e-9);
        assert!((result.reward("downtime").unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(result.reward("repairs").unwrap(), 2.0);
        assert_eq!(result.reward("up_at_end").unwrap(), 1.0);
        assert_eq!(result.end_time, 24.0);
        assert!(result.reward("missing").is_err());
        assert!(result.iter().count() == 4);
    }

    #[test]
    fn trace_records_event_sequence() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", det(5.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", det(1.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let (result, trace) = sim.run_traced(&[], 13.0, 0.0, &mut rng).unwrap();
        // fail@5, repair@6, fail@11, repair@12 -> 4 events
        assert_eq!(result.events, 4);
        let names: Vec<&str> = trace.iter().map(|e| e.activity_name.as_str()).collect();
        assert_eq!(names, vec!["fail", "repair", "fail", "repair"]);
        assert!((trace[0].time - 5.0).abs() < 1e-12);
        assert!((trace[3].time - 12.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_availability_matches_analytic_steady_state() {
        // Availability of an M/M/1-style repairable unit:
        // A = mu / (lambda + mu) with failure rate lambda and repair rate mu.
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(99);
        let mut total = 0.0;
        let reps = 40;
        for _ in 0..reps {
            total += sim.run(&rewards, 50_000.0, 0.0, &mut rng).unwrap().reward("avail").unwrap();
        }
        let avail = total / reps as f64;
        let expected = 100.0 / 110.0;
        assert!((avail - expected).abs() < 0.01, "avail {avail}, expected {expected}");
    }

    #[test]
    fn instantaneous_activities_fire_with_priority_and_cases() {
        // A timed source deposits a token; an instantaneous router moves it
        // to one of two sinks with probability 0.3 / 0.7.
        let mut b = ModelBuilder::new("router");
        let pending = b.add_place("pending", 0).unwrap();
        let sink_a = b.add_place("sink_a", 0).unwrap();
        let sink_b = b.add_place("sink_b", 0).unwrap();
        let idle = b.add_place("idle", 1).unwrap();
        b.timed_activity("arrive", det(1.0))
            .unwrap()
            .input_arc(idle, 1)
            .output_arc(pending, 1)
            .output_arc(idle, 1)
            .build()
            .unwrap();
        b.instant_activity("route")
            .unwrap()
            .input_arc(pending, 1)
            .case(0.3)
            .output_arc(sink_a, 1)
            .case(0.7)
            .output_arc(sink_b, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards = vec![
            RewardSpec::instant_of_time("a", move |m| m.tokens(sink_a) as f64),
            RewardSpec::instant_of_time("b", move |m| m.tokens(sink_b) as f64),
            RewardSpec::instant_of_time("pending", move |m| m.tokens(pending) as f64),
        ];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(7);
        let result = sim.run(&rewards, 10_000.5, 0.0, &mut rng).unwrap();
        let a = result.reward("a").unwrap();
        let b_count = result.reward("b").unwrap();
        // Every arrival must have been routed immediately.
        assert_eq!(result.reward("pending").unwrap(), 0.0);
        assert_eq!(a + b_count, 10_000.0);
        let frac_a = a / 10_000.0;
        assert!((frac_a - 0.3).abs() < 0.02, "case probability estimate {frac_a}");
    }

    #[test]
    fn unstable_instantaneous_loop_is_detected() {
        let mut b = ModelBuilder::new("loop");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        b.instant_activity("pq").unwrap().input_arc(p, 1).output_arc(q, 1).build().unwrap();
        b.instant_activity("qp").unwrap().input_arc(q, 1).output_arc(p, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let err = sim.run(&[], 10.0, 0.0, &mut rng).unwrap_err();
        assert!(matches!(err, SanError::UnstableInstantaneousLoop { .. }));
    }

    #[test]
    fn marking_dependent_rate_scales_with_population() {
        // N independent units each failing at rate lambda, modelled as a
        // single aggregate activity with rate N(t) * lambda. Count failures
        // over a horizon with instantaneous repair (tokens return), so the
        // expected number of failures is N * lambda * T.
        let mut b = ModelBuilder::new("aggregate");
        let working = b.add_place("working", 50).unwrap();
        let fail = b
            .timed_activity_fn("fail", move |m: &Marking| {
                let n = m.tokens(working).max(1) as f64;
                Dist::Exponential(Exponential::new(n * 0.01).unwrap())
            })
            .unwrap()
            .input_arc(working, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards = vec![RewardSpec::impulse_total("failures", fail, 1.0)];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(11);
        let mut total = 0.0;
        let reps = 30;
        for _ in 0..reps {
            total += sim.run(&rewards, 1000.0, 0.0, &mut rng).unwrap().reward("failures").unwrap();
        }
        let mean_failures = total / reps as f64;
        let expected = 50.0 * 0.01 * 1000.0;
        assert!(
            (mean_failures - expected).abs() / expected < 0.05,
            "mean {mean_failures}, expected {expected}"
        );
    }

    #[test]
    fn warmup_excludes_initial_transient() {
        // The unit starts down and is repaired deterministically at t=10,
        // after which it never fails. With warm-up 20, availability over the
        // observed window is exactly 1.
        let mut b = ModelBuilder::new("warmup");
        let up = b.add_place("up", 0).unwrap();
        let down = b.add_place("down", 1).unwrap();
        b.timed_activity("repair", det(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(5);
        let with_warmup = sim.run(&rewards, 120.0, 20.0, &mut rng).unwrap();
        assert!((with_warmup.reward("avail").unwrap() - 1.0).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(5);
        let without = sim.run(&rewards, 120.0, 0.0, &mut rng).unwrap();
        assert!((without.reward("avail").unwrap() - 110.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_horizon_and_warmup_are_rejected() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        b.timed_activity("fail", exp(1.0)).unwrap().input_arc(up, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(sim.run(&[], 0.0, 0.0, &mut rng).is_err());
        assert!(sim.run(&[], -5.0, 0.0, &mut rng).is_err());
        assert!(sim.run(&[], 10.0, 10.0, &mut rng).is_err());
        assert!(sim.run(&[], 10.0, -1.0, &mut rng).is_err());
    }

    #[test]
    fn impulse_reward_with_bad_activity_reference_errors() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        b.timed_activity("fail", exp(1.0)).unwrap().input_arc(up, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let bogus = RewardSpec::impulse_total("x", ActivityId(42), 1.0);
        assert!(matches!(sim.run(&[bogus], 10.0, 0.0, &mut rng), Err(SanError::UnknownId { .. })));
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(50.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(5.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let r1 = sim.run(&rewards, 10_000.0, 0.0, &mut SimRng::seed_from_u64(3)).unwrap();
        let r2 = sim.run(&rewards, 10_000.0, 0.0, &mut SimRng::seed_from_u64(3)).unwrap();
        assert_eq!(r1, r2);
    }
}
