//! The simulation front end shared by both execution kernels.
//!
//! Two kernels implement the same Möbius-style execution semantics:
//!
//! * [`crate::calendar`] — the production event-calendar engine: an indexed
//!   binary min-heap keyed by `(firing time, activity index)` selects the
//!   next completion in `O(log A)`, and a precomputed place→activity
//!   incidence index plus the marking's dirty-place change log re-examines
//!   only the activities whose enabling could actually have changed, so the
//!   per-event cost is `O(log A + affected)`.
//! * [`crate::reference`] — the retained naive kernel: a full `O(A)` scan
//!   for next-event selection, instantaneous firing, and schedule refresh
//!   after every event, with per-reward scans (`O(R)`) for accumulation.
//!   It is the semantics oracle: differential tests pin the calendar engine
//!   bit-identical to it (same rewards, event counts, traces, and RNG draw
//!   sequence), which also catches unsound
//!   [`enabling_reads`](crate::ActivityBuilder::enabling_reads)
//!   declarations.
//!
//! Both kernels share this module's primitives — activity firing, the
//! compiled [`RewardTable`] accumulators, and result finalisation — so they
//! cannot drift apart in reward arithmetic.

use std::sync::Arc;

use probdist::SimRng;

use crate::model::Activity;
use crate::reward::{Finalise, RewardNames, RewardSpec, RewardTable};
use crate::{ActivityId, Marking, Model, SanError};

/// Maximum number of zero-delay firings processed at a single time point
/// before the simulator concludes the model has an unstable loop of
/// instantaneous activities.
pub(crate) const MAX_INSTANT_FIRINGS: usize = 100_000;

/// Models with fewer activities than this run on the naive full-rescan
/// kernel even through [`Simulator::run`]: below the crossover the
/// calendar's constant per-event bookkeeping (heap maintenance, the dirty
/// place change log) costs more than the rescan it avoids. Measured on the
/// 2-activity repairable unit (BENCH.json,
/// `san_engine_one_year_repairable_unit[_ref]`): the naive kernel does
/// ~24.6M events/s against the calendar's ~16.2M — about 1.5x — and on
/// the 4-activity Beowulf model it is still ~1.35x ahead (traced vs
/// traced, 2.5M events over 50×100k-hour runs), while on the 34-activity
/// ABE composition the calendar is already 1.7x ahead; the crossover thus
/// sits just above 4, matching the ROADMAP's "naive scan ~1.5x faster
/// below ~5 activities". The two
/// kernels are pinned bit-identical by the differential suites
/// (`calendar_differential.rs`, `engine_differential.rs`), so the
/// selection is observably pure.
pub(crate) const NAIVE_KERNEL_MAX_ACTIVITIES: usize = 5;

/// The estimated reward values produced by a single simulation replication.
///
/// Values are stored as a dense vector over the run's compiled reward table,
/// with the reward names interned once per run and shared by every
/// replication through an `Arc` — a replication allocates one `Vec<f64>`,
/// not a map of owned strings.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    pub(crate) names: Arc<RewardNames>,
    pub(crate) values: Vec<f64>,
    /// Number of activity completions processed.
    pub events: u64,
    /// Simulated time at which the run ended (the horizon).
    pub end_time: f64,
}

impl RunResult {
    /// The value of the named reward.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] if the reward was not registered
    /// for the run.
    pub fn reward(&self, name: &str) -> Result<f64, SanError> {
        self.names
            .index
            .get(name)
            .map(|&slot| self.values[slot])
            .ok_or_else(|| SanError::UnknownReward { name: name.to_string() })
    }

    /// Iterates over `(name, value)` pairs in reward registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.names.names.iter().map(String::as_str).zip(self.values.iter().copied())
    }

    /// Reconstructs a result from `(name, value)` pairs in slot order — the
    /// inverse of [`RunResult::iter`]. The study checkpoint layer uses this
    /// to restore persisted replications: a restored result answers
    /// [`RunResult::reward`] exactly like the original, so statistics
    /// reduced from a stored prefix are bit-identical to a fresh run's.
    pub fn from_named_values(rewards: Vec<(String, f64)>, events: u64, end_time: f64) -> RunResult {
        let names: Vec<String> = rewards.iter().map(|(name, _)| name.clone()).collect();
        let index = names.iter().enumerate().map(|(slot, name)| (name.clone(), slot)).collect();
        let values = rewards.into_iter().map(|(_, value)| value).collect();
        RunResult { names: Arc::new(RewardNames { names, index }), values, events, end_time }
    }
}

/// One entry of a simulation trace (activity completion).
///
/// Only the [`ActivityId`] is stored — resolve the name through
/// [`Model::activity_name`] when rendering or asserting, so tracing does not
/// allocate a `String` per event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the completion (hours).
    pub time: f64,
    /// The activity that completed.
    pub activity: ActivityId,
    /// Index of the probabilistic case chosen.
    pub case: usize,
}

/// Reusable per-worker scratch for the simulation kernels.
///
/// One replication of either kernel needs a marking, a reward accumulator,
/// and (for the calendar kernel) a future-event heap plus several
/// dirty-tracking buffers — eight-odd heap allocations per run. A
/// `RunScratch` owns all of them; the kernels reset it at the start of
/// every replication, so a worker that runs thousands of replications
/// allocates once and the per-replication hot path is allocation-free
/// (the returned [`RunResult`]'s value vector is the single remaining
/// allocation). [`Experiment`](crate::Experiment) threads one scratch per
/// pool worker through `probdist::parallel::replicate_with`.
///
/// Scratch state never carries information between replications — every
/// buffer is cleared or overwritten on reset — so results are bit-identical
/// whether a scratch is fresh or reused (the parallel determinism suites
/// pin this).
#[derive(Debug, Default)]
pub struct RunScratch {
    /// Per-slot reward accumulator (`RewardTable` layout).
    pub(crate) acc: Vec<f64>,
    /// The reusable marking; `None` until the first replication.
    pub(crate) marking: Option<Marking>,
    /// Event-calendar kernel state (heap, schedules, dirty sets).
    pub(crate) calendar: crate::calendar::CalendarScratch,
    /// Naive-kernel state (schedule scan, written flags).
    pub(crate) reference: crate::reference::ReferenceScratch,
}

impl RunScratch {
    /// Creates an empty scratch; buffers are sized lazily by the first
    /// replication that uses it.
    pub fn new() -> Self {
        RunScratch::default()
    }
}

/// Resets (or lazily creates) the scratch marking to the model's initial
/// marking and returns it.
pub(crate) fn prepare_marking<'s>(slot: &'s mut Option<Marking>, model: &Model) -> &'s mut Marking {
    match slot {
        Some(marking) => model.reset_marking(marking),
        None => *slot = Some(model.initial_marking()),
    }
    slot.as_mut().expect("marking was just initialised")
}

/// Discrete-event simulator for a [`Model`].
///
/// The execution semantics follow Möbius' simulator:
///
/// * Instantaneous activities complete immediately and have priority over
///   timed activities; a bounded cascade of them is processed at each time
///   point, lowest activity index first.
/// * A timed activity samples its firing delay when it becomes enabled
///   (activation). If it becomes disabled before firing, the sample is
///   discarded. If the marking changes while it stays enabled, the sample is
///   kept unless the activity requests resampling (restart policy) or has a
///   marking-dependent distribution.
/// * Rate rewards are integrated between events; impulse rewards accumulate
///   on activity completion. An optional warm-up period excludes the initial
///   transient from both.
///
/// [`Simulator::run`] executes on the event-calendar kernel;
/// [`Simulator::run_reference`] executes the same semantics on the retained
/// naive full-scan kernel for differential testing and benchmarking.
#[derive(Debug, Clone)]
pub struct Simulator<'m> {
    model: &'m Model,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator bound to `model`.
    pub fn new(model: &'m Model) -> Self {
        Simulator { model }
    }

    /// Runs one replication until `horizon` hours and returns the reward
    /// values.
    ///
    /// Executes on the event-calendar kernel, except for tiny models
    /// (fewer than `NAIVE_KERNEL_MAX_ACTIVITIES` = 5 activities) where the
    /// naive full-rescan kernel is measurably faster and the two kernels
    /// are bit-identical, so the selection never changes a result.
    ///
    /// In debug builds the model is statically analysed first
    /// ([`Model::lint`]) and rejected if the lint reports Error-level
    /// diagnostics — under-declared gate or timing reads would otherwise
    /// silently corrupt calendar-kernel results. The verdict is memoised
    /// per model, and release builds skip the check entirely.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] for a non-positive horizon,
    /// [`SanError::UnknownId`] if a reward references an activity that does
    /// not belong to the model,
    /// [`SanError::UnstableInstantaneousLoop`] if instantaneous activities
    /// never stabilise, and (debug builds only) [`SanError::LintRejected`]
    /// if the pre-simulation lint fails.
    pub fn run(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<RunResult, SanError> {
        validate_window(horizon, warmup)?;
        self.model.debug_lint()?;
        let table = RewardTable::compile(self.model, rewards)?;
        self.run_compiled(&table, horizon, warmup, rng, &mut RunScratch::new())
    }

    /// Dispatches a compiled run to the faster kernel for the model size.
    fn run_compiled(
        &self,
        table: &RewardTable,
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SanError> {
        if self.model.num_activities() < NAIVE_KERNEL_MAX_ACTIVITIES {
            crate::reference::run(self.model, table, horizon, warmup, rng, None, scratch)
        } else {
            crate::calendar::run(self.model, table, horizon, warmup, rng, None, scratch)
        }
    }

    /// Like [`Simulator::run`], but also records every activity completion.
    ///
    /// Intended for debugging and for tests that assert on event orderings;
    /// tracing allocates per event, so do not use it for production
    /// experiments. Unlike [`Simulator::run`], this always executes the
    /// event-calendar kernel — never the small-model naive fallback — so
    /// differential tests that trace tiny handcrafted models really do pin
    /// the calendar engine against [`Simulator::run_reference_traced`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_traced(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<(RunResult, Vec<TraceEvent>), SanError> {
        validate_window(horizon, warmup)?;
        let table = RewardTable::compile(self.model, rewards)?;
        let mut trace = Vec::new();
        let result = crate::calendar::run(
            self.model,
            &table,
            horizon,
            warmup,
            rng,
            Some(&mut trace),
            &mut RunScratch::new(),
        )?;
        Ok((result, trace))
    }

    /// Runs one replication on the retained naive full-scan kernel.
    ///
    /// The reference kernel re-examines every activity after every event and
    /// selects the next completion with a linear scan — `O(A)` per event. It
    /// exists so differential tests (and benches) can pin the event-calendar
    /// engine against an independent implementation of the same semantics:
    /// for any model and seed, the rewards, event counts, and RNG draw
    /// sequence are bit-identical. Because it ignores
    /// [`enabling_reads`](crate::ActivityBuilder::enabling_reads)
    /// declarations, a divergence also flags an unsound declaration.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_reference(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<RunResult, SanError> {
        validate_window(horizon, warmup)?;
        let table = RewardTable::compile(self.model, rewards)?;
        crate::reference::run(
            self.model,
            &table,
            horizon,
            warmup,
            rng,
            None,
            &mut RunScratch::new(),
        )
    }

    /// Like [`Simulator::run_reference`], but also records every activity
    /// completion.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`].
    pub fn run_reference_traced(
        &self,
        rewards: &[RewardSpec],
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
    ) -> Result<(RunResult, Vec<TraceEvent>), SanError> {
        validate_window(horizon, warmup)?;
        let table = RewardTable::compile(self.model, rewards)?;
        let mut trace = Vec::new();
        let result = crate::reference::run(
            self.model,
            &table,
            horizon,
            warmup,
            rng,
            Some(&mut trace),
            &mut RunScratch::new(),
        )?;
        Ok((result, trace))
    }

    /// Runs one replication against an already-compiled reward table,
    /// reusing a caller-owned [`RunScratch`] — the allocation-free
    /// replication hot path. The replication manager compiles the table once
    /// per run and passes one scratch per pool worker.
    pub(crate) fn run_with_table_scratch(
        &self,
        table: &RewardTable,
        horizon: f64,
        warmup: f64,
        rng: &mut SimRng,
        scratch: &mut RunScratch,
    ) -> Result<RunResult, SanError> {
        validate_window(horizon, warmup)?;
        self.run_compiled(table, horizon, warmup, rng, scratch)
    }
}

/// Validates the `(horizon, warmup)` observation window.
pub(crate) fn validate_window(horizon: f64, warmup: f64) -> Result<(), SanError> {
    if !(horizon.is_finite() && horizon > 0.0) {
        return Err(SanError::InvalidExperiment {
            reason: format!("simulation horizon must be positive and finite, got {horizon}"),
        });
    }
    if !(0.0..horizon).contains(&warmup) {
        return Err(SanError::InvalidExperiment {
            reason: format!("warm-up ({warmup}) must lie in [0, horizon)"),
        });
    }
    Ok(())
}

/// Integrates every time-integrated rate reward over `[from, to]`, clipped
/// to the post-warm-up window.
pub(crate) fn accumulate_rate_rewards(
    table: &RewardTable,
    marking: &Marking,
    from: f64,
    to: f64,
    warmup: f64,
    acc: &mut [f64],
) {
    let start = from.max(warmup);
    if to <= start {
        return;
    }
    let dt = to - start;
    for (slot, function) in &table.integrated {
        acc[*slot as usize] += function(marking) * dt;
    }
}

/// Adds the impulse amounts bucketed on the completed activity.
#[inline]
pub(crate) fn credit_impulses(table: &RewardTable, completed: usize, acc: &mut [f64]) {
    for &(slot, amount) in &table.impulses[completed] {
        acc[slot as usize] += amount;
    }
}

/// Turns the per-slot accumulators into the reported reward values.
///
/// Reads the (scratch-owned, reusable) accumulator slice and builds the
/// result's value vector fresh — the one allocation a replication keeps,
/// since the [`RunResult`] outlives the scratch.
pub(crate) fn finalise(
    table: &RewardTable,
    acc: &[f64],
    marking: &Marking,
    observed: f64,
    events: u64,
    end_time: f64,
) -> RunResult {
    let values = table
        .finals
        .iter()
        .enumerate()
        .map(|(slot, rule)| match rule {
            Finalise::RateTimeAveraged | Finalise::ImpulsePerHour => acc[slot] / observed,
            Finalise::RateAccumulated | Finalise::ImpulseTotal => acc[slot],
            Finalise::RateInstant(function) => function(marking),
        })
        .collect();
    RunResult { names: Arc::clone(&table.names), values, events, end_time }
}

/// Applies the marking changes of one activity completion and returns the
/// chosen case index.
pub(crate) fn fire_activity(
    model: &Model,
    id: ActivityId,
    marking: &mut Marking,
    rng: &mut SimRng,
) -> usize {
    let activity = model.activity_ref(id);
    // Input side: arcs consume tokens, gates apply their functions.
    for &(place, tokens) in &activity.input_arcs {
        let removed = marking.remove_tokens(place, tokens);
        // An *enabled* activity always has every input arc covered; an
        // underflow here means the model fired with stale enabling (or two
        // arcs drain the same place) — a modelling error that
        // `Marking::remove_tokens` would otherwise silently saturate away.
        debug_assert!(
            removed == tokens,
            "firing enabled activity `{}` underflowed place #{}: needed {} tokens, found {}",
            activity.name,
            place.index(),
            tokens,
            removed,
        );
    }
    for gate in &activity.input_gates {
        (gate.function)(marking);
    }
    // Choose a case.
    let case_idx = if activity.cases.len() == 1 {
        0
    } else {
        let u = rng.uniform01();
        let mut acc = 0.0;
        let mut chosen = activity.cases.len() - 1;
        for (i, case) in activity.cases.iter().enumerate() {
            acc += case.probability;
            if u < acc {
                chosen = i;
                break;
            }
        }
        chosen
    };
    let case = &activity.cases[case_idx];
    for &(place, tokens) in &case.output_arcs {
        marking.add_tokens(place, tokens);
    }
    for gate in &case.output_gates {
        (gate.function)(marking);
    }
    case_idx
}

/// Samples a firing delay for a timed activity in the current marking.
///
/// # Panics
///
/// Panics if called for an instantaneous activity.
#[inline]
pub(crate) fn sample_delay(activity: &Activity, marking: &Marking, rng: &mut SimRng) -> f64 {
    use probdist::Distribution;
    match &activity.timing {
        crate::Timing::Timed(dist) => dist.sample(rng),
        crate::Timing::TimedFn(f) => f(marking).sample(rng),
        crate::Timing::Instantaneous => unreachable!("instantaneous activities are not scheduled"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::ModelBuilder;
    use probdist::{Deterministic, Dist, Exponential};

    fn exp(mean: f64) -> Exponential {
        Exponential::from_mean(mean).unwrap()
    }

    fn det(v: f64) -> Deterministic {
        Deterministic::new(v).unwrap()
    }

    /// A single repairable unit: deterministic failure at 10 h, deterministic
    /// repair taking 2 h. Over a 24-hour horizon the unit is down during
    /// [10, 12) and [22, 24), i.e. availability 20/24; the second repair
    /// completes exactly at the horizon and is still counted.
    #[test]
    fn deterministic_failure_repair_cycle_availability() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", det(10.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        let repair = b
            .timed_activity("repair", det(2.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();

        let rewards = vec![
            RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            ),
            RewardSpec::accumulated_rate(
                "downtime",
                move |m| if m.tokens(down) > 0 { 1.0 } else { 0.0 },
            ),
            RewardSpec::impulse_total("repairs", repair, 1.0),
            RewardSpec::instant_of_time("up_at_end", move |m| m.tokens(up) as f64),
        ];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let result = sim.run(&rewards, 24.0, 0.0, &mut rng).unwrap();

        assert!((result.reward("avail").unwrap() - 20.0 / 24.0).abs() < 1e-9);
        assert!((result.reward("downtime").unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(result.reward("repairs").unwrap(), 2.0);
        assert_eq!(result.reward("up_at_end").unwrap(), 1.0);
        assert_eq!(result.end_time, 24.0);
        assert!(result.reward("missing").is_err());
        assert!(result.iter().count() == 4);
    }

    #[test]
    fn run_result_iterates_in_registration_order() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        b.timed_activity("fail", det(50.0)).unwrap().input_arc(up, 1).build().unwrap();
        let model = b.build().unwrap();
        let rewards = vec![
            RewardSpec::instant_of_time("z_last", |_m| 2.0),
            RewardSpec::instant_of_time("a_first", |_m| 1.0),
        ];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let result = sim.run(&rewards, 10.0, 0.0, &mut rng).unwrap();
        let names: Vec<&str> = result.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["z_last", "a_first"]);
    }

    #[test]
    fn trace_records_event_sequence() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", det(5.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", det(1.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let (result, trace) = sim.run_traced(&[], 13.0, 0.0, &mut rng).unwrap();
        // fail@5, repair@6, fail@11, repair@12 -> 4 events
        assert_eq!(result.events, 4);
        let names: Vec<&str> = trace.iter().map(|e| model.activity_name(e.activity)).collect();
        assert_eq!(names, vec!["fail", "repair", "fail", "repair"]);
        assert!((trace[0].time - 5.0).abs() < 1e-12);
        assert!((trace[3].time - 12.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_availability_matches_analytic_steady_state() {
        // Availability of an M/M/1-style repairable unit:
        // A = mu / (lambda + mu) with failure rate lambda and repair rate mu.
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(100.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(99);
        let mut total = 0.0;
        let reps = 40;
        for _ in 0..reps {
            total += sim.run(&rewards, 50_000.0, 0.0, &mut rng).unwrap().reward("avail").unwrap();
        }
        let avail = total / reps as f64;
        let expected = 100.0 / 110.0;
        assert!((avail - expected).abs() < 0.01, "avail {avail}, expected {expected}");
    }

    #[test]
    fn instantaneous_activities_fire_with_priority_and_cases() {
        // A timed source deposits a token; an instantaneous router moves it
        // to one of two sinks with probability 0.3 / 0.7.
        let mut b = ModelBuilder::new("router");
        let pending = b.add_place("pending", 0).unwrap();
        let sink_a = b.add_place("sink_a", 0).unwrap();
        let sink_b = b.add_place("sink_b", 0).unwrap();
        let idle = b.add_place("idle", 1).unwrap();
        b.timed_activity("arrive", det(1.0))
            .unwrap()
            .input_arc(idle, 1)
            .output_arc(pending, 1)
            .output_arc(idle, 1)
            .build()
            .unwrap();
        b.instant_activity("route")
            .unwrap()
            .input_arc(pending, 1)
            .case(0.3)
            .output_arc(sink_a, 1)
            .case(0.7)
            .output_arc(sink_b, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards = vec![
            RewardSpec::instant_of_time("a", move |m| m.tokens(sink_a) as f64),
            RewardSpec::instant_of_time("b", move |m| m.tokens(sink_b) as f64),
            RewardSpec::instant_of_time("pending", move |m| m.tokens(pending) as f64),
        ];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(7);
        let result = sim.run(&rewards, 10_000.5, 0.0, &mut rng).unwrap();
        let a = result.reward("a").unwrap();
        let b_count = result.reward("b").unwrap();
        // Every arrival must have been routed immediately.
        assert_eq!(result.reward("pending").unwrap(), 0.0);
        assert_eq!(a + b_count, 10_000.0);
        let frac_a = a / 10_000.0;
        assert!((frac_a - 0.3).abs() < 0.02, "case probability estimate {frac_a}");
    }

    #[test]
    fn unstable_instantaneous_loop_is_detected() {
        let mut b = ModelBuilder::new("loop");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        b.instant_activity("pq").unwrap().input_arc(p, 1).output_arc(q, 1).build().unwrap();
        b.instant_activity("qp").unwrap().input_arc(q, 1).output_arc(p, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let err = sim.run(&[], 10.0, 0.0, &mut rng).unwrap_err();
        assert!(matches!(err, SanError::UnstableInstantaneousLoop { .. }));
        let mut rng = SimRng::seed_from_u64(1);
        let err = sim.run_reference(&[], 10.0, 0.0, &mut rng).unwrap_err();
        assert!(matches!(err, SanError::UnstableInstantaneousLoop { .. }));
    }

    #[test]
    fn marking_dependent_rate_scales_with_population() {
        // N independent units each failing at rate lambda, modelled as a
        // single aggregate activity with rate N(t) * lambda. Count failures
        // over a horizon with instantaneous repair (tokens return), so the
        // expected number of failures is N * lambda * T.
        let mut b = ModelBuilder::new("aggregate");
        let working = b.add_place("working", 50).unwrap();
        let fail = b
            .timed_activity_fn("fail", move |m: &Marking| {
                let n = m.tokens(working).max(1) as f64;
                Dist::Exponential(Exponential::new(n * 0.01).unwrap())
            })
            .unwrap()
            .input_arc(working, 1)
            .output_arc(working, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards = vec![RewardSpec::impulse_total("failures", fail, 1.0)];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(11);
        let mut total = 0.0;
        let reps = 30;
        for _ in 0..reps {
            total += sim.run(&rewards, 1000.0, 0.0, &mut rng).unwrap().reward("failures").unwrap();
        }
        let mean_failures = total / reps as f64;
        let expected = 50.0 * 0.01 * 1000.0;
        assert!(
            (mean_failures - expected).abs() / expected < 0.05,
            "mean {mean_failures}, expected {expected}"
        );
    }

    #[test]
    fn warmup_excludes_initial_transient() {
        // The unit starts down and is repaired deterministically at t=10,
        // after which it never fails. With warm-up 20, availability over the
        // observed window is exactly 1.
        let mut b = ModelBuilder::new("warmup");
        let up = b.add_place("up", 0).unwrap();
        let down = b.add_place("down", 1).unwrap();
        b.timed_activity("repair", det(10.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(5);
        let with_warmup = sim.run(&rewards, 120.0, 20.0, &mut rng).unwrap();
        assert!((with_warmup.reward("avail").unwrap() - 1.0).abs() < 1e-12);
        let mut rng = SimRng::seed_from_u64(5);
        let without = sim.run(&rewards, 120.0, 0.0, &mut rng).unwrap();
        assert!((without.reward("avail").unwrap() - 110.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_horizon_and_warmup_are_rejected() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        b.timed_activity("fail", exp(1.0)).unwrap().input_arc(up, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(sim.run(&[], 0.0, 0.0, &mut rng).is_err());
        assert!(sim.run(&[], -5.0, 0.0, &mut rng).is_err());
        assert!(sim.run(&[], 10.0, 10.0, &mut rng).is_err());
        assert!(sim.run(&[], 10.0, -1.0, &mut rng).is_err());
        assert!(sim.run_reference(&[], 0.0, 0.0, &mut rng).is_err());
    }

    #[test]
    fn impulse_reward_with_bad_activity_reference_errors() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        b.timed_activity("fail", exp(1.0)).unwrap().input_arc(up, 1).build().unwrap();
        let model = b.build().unwrap();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let bogus = RewardSpec::impulse_total("x", ActivityId(42), 1.0);
        assert!(matches!(sim.run(&[bogus], 10.0, 0.0, &mut rng), Err(SanError::UnknownId { .. })));
    }

    /// The small-model fallback must be observably pure: on a model below
    /// the crossover threshold `run` (naive kernel), `run_traced` (always
    /// the calendar kernel), and `run_reference` must all produce the same
    /// result bit for bit.
    #[test]
    fn tiny_model_kernel_selection_is_observably_pure() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(70.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(6.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        assert!(model.num_activities() < NAIVE_KERNEL_MAX_ACTIVITIES);
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let auto = sim.run(&rewards, 30_000.0, 0.0, &mut SimRng::seed_from_u64(41)).unwrap();
        let (calendar, _) =
            sim.run_traced(&rewards, 30_000.0, 0.0, &mut SimRng::seed_from_u64(41)).unwrap();
        let reference =
            sim.run_reference(&rewards, 30_000.0, 0.0, &mut SimRng::seed_from_u64(41)).unwrap();
        assert_eq!(auto, calendar);
        assert_eq!(auto, reference);
    }

    #[test]
    fn identical_seeds_give_identical_results() {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", exp(50.0))
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", exp(5.0))
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        let model = b.build().unwrap();
        let rewards =
            vec![RewardSpec::time_averaged_rate(
                "avail",
                move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 },
            )];
        let sim = Simulator::new(&model);
        let r1 = sim.run(&rewards, 10_000.0, 0.0, &mut SimRng::seed_from_u64(3)).unwrap();
        let r2 = sim.run(&rewards, 10_000.0, 0.0, &mut SimRng::seed_from_u64(3)).unwrap();
        assert_eq!(r1, r2);
    }

    /// A model that passes the enabling check but underflows when fired:
    /// two input arcs drain the same place holding a single token. The
    /// enabled check covers each arc independently, so the activity would
    /// fire.
    fn underflow_model() -> Model {
        let mut b = ModelBuilder::new("underflow");
        let p = b.add_place("p", 1).unwrap();
        b.timed_activity("drain", det(1.0))
            .unwrap()
            .input_arc(p, 1)
            .input_arc(p, 1)
            .build()
            .unwrap();
        b.build().unwrap()
    }

    /// Debug runs never reach the firing: the pre-simulation lint flags
    /// the duplicate-arc hazard statically (`SAN012`) and rejects the
    /// model up front.
    #[cfg(debug_assertions)]
    #[test]
    fn underflow_hazard_is_rejected_by_the_debug_lint() {
        let model = underflow_model();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        match sim.run(&[], 10.0, 0.0, &mut rng) {
            Err(SanError::LintRejected { details, .. }) => {
                assert!(details.contains("SAN012"), "expected SAN012 in: {details}");
            }
            other => panic!("expected a lint rejection, got {other:?}"),
        }
    }

    /// The runtime debug assertion stays as the last line of defence on
    /// the unlinted reference-kernel path: firing with stale enabling
    /// still aborts instead of silently saturating.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "underflowed")]
    fn firing_underflow_is_caught_in_debug_builds() {
        let model = underflow_model();
        let sim = Simulator::new(&model);
        let mut rng = SimRng::seed_from_u64(1);
        let _ = sim.run_reference(&[], 10.0, 0.0, &mut rng);
    }
}
