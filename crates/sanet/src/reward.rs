//! Reward variables: functions of the model's behaviour that the simulator
//! estimates.
//!
//! Two families are supported, mirroring Möbius:
//!
//! * **Rate rewards** are functions of the marking. They can be reported as
//!   a *time average* over the observation window (e.g. availability = the
//!   fraction of time the CFS is serving clients), as an *accumulated*
//!   integral (e.g. total downtime hours), or as the *instant-of-time* value
//!   at the end of the run.
//! * **Impulse rewards** fire when a given activity completes (e.g. count
//!   one disk replacement per completion of the `replace_disk` activity).
//!   They can be reported as a total count or normalised per hour.

use std::fmt;
use std::sync::Arc;

use crate::{ActivityId, Marking};

/// A rate-reward function of the marking.
pub type RewardFn = Arc<dyn Fn(&Marking) -> f64 + Send + Sync>;

/// How a reward is reported at the end of a replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewardKind {
    /// Time integral of the rate function divided by the observation length.
    TimeAveraged,
    /// Raw time integral of the rate function over the observation window.
    Accumulated,
    /// Value of the rate function in the final marking.
    InstantOfTime,
}

/// How an impulse reward is reported at the end of a replication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpulseKind {
    /// Sum of impulse amounts over the observation window.
    Total,
    /// Sum of impulse amounts divided by the observation length in hours.
    PerHour,
}

#[derive(Clone)]
pub(crate) enum RewardVariant {
    Rate { function: RewardFn, kind: RewardKind },
    Impulse { activity: ActivityId, amount: f64, kind: ImpulseKind },
}

/// Specification of one reward variable to estimate.
#[derive(Clone)]
pub struct RewardSpec {
    pub(crate) name: String,
    pub(crate) variant: RewardVariant,
}

impl fmt::Debug for RewardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.variant {
            RewardVariant::Rate { kind, .. } => format!("rate/{kind:?}"),
            RewardVariant::Impulse { kind, activity, .. } => {
                format!("impulse/{kind:?} on activity #{}", activity.index())
            }
        };
        f.debug_struct("RewardSpec").field("name", &self.name).field("kind", &kind).finish()
    }
}

impl RewardSpec {
    /// A time-averaged rate reward: the integral of `function` over the
    /// observation window divided by its length. Use this for
    /// availability-style measures.
    pub fn time_averaged_rate(
        name: impl Into<String>,
        function: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        RewardSpec {
            name: name.into(),
            variant: RewardVariant::Rate {
                function: Arc::new(function),
                kind: RewardKind::TimeAveraged,
            },
        }
    }

    /// An accumulated rate reward: the raw time integral of `function` over
    /// the observation window (e.g. total downtime hours).
    pub fn accumulated_rate(
        name: impl Into<String>,
        function: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        RewardSpec {
            name: name.into(),
            variant: RewardVariant::Rate {
                function: Arc::new(function),
                kind: RewardKind::Accumulated,
            },
        }
    }

    /// An instant-of-time rate reward: the value of `function` in the final
    /// marking of the replication.
    pub fn instant_of_time(
        name: impl Into<String>,
        function: impl Fn(&Marking) -> f64 + Send + Sync + 'static,
    ) -> Self {
        RewardSpec {
            name: name.into(),
            variant: RewardVariant::Rate {
                function: Arc::new(function),
                kind: RewardKind::InstantOfTime,
            },
        }
    }

    /// An impulse reward that adds `amount` every time `activity` completes,
    /// reported as a total over the observation window.
    pub fn impulse_total(name: impl Into<String>, activity: ActivityId, amount: f64) -> Self {
        RewardSpec {
            name: name.into(),
            variant: RewardVariant::Impulse { activity, amount, kind: ImpulseKind::Total },
        }
    }

    /// An impulse reward that adds `amount` every time `activity` completes,
    /// reported per hour of observation.
    pub fn impulse_per_hour(name: impl Into<String>, activity: ActivityId, amount: f64) -> Self {
        RewardSpec {
            name: name.into(),
            variant: RewardVariant::Impulse { activity, amount, kind: ImpulseKind::PerHour },
        }
    }

    /// The reward's name, used to retrieve its estimate from run results.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The interned name table of a compiled reward set, shared by every
/// [`RunResult`](crate::RunResult) of a run through one `Arc`.
#[derive(Debug, PartialEq, Default)]
pub(crate) struct RewardNames {
    /// Reward names in specification (slot) order.
    pub(crate) names: Vec<String>,
    /// Name → slot lookup. With duplicate names the last slot wins,
    /// matching the behaviour of the per-replication `HashMap` this
    /// replaces.
    pub(crate) index: std::collections::HashMap<String, usize>,
}

/// How one reward slot is turned into its reported value at the end of a
/// replication.
pub(crate) enum Finalise {
    /// Accumulated rate integral divided by the observation length.
    RateTimeAveraged,
    /// Raw accumulated rate integral.
    RateAccumulated,
    /// The rate function evaluated in the final marking.
    RateInstant(RewardFn),
    /// Accumulated impulse total.
    ImpulseTotal,
    /// Accumulated impulse total divided by the observation length.
    ImpulsePerHour,
}

/// A reward specification compiled for the run loop: rate rewards that
/// integrate over time live in a dense slice walked once per event, impulse
/// rewards are bucketed by the activity that triggers them (O(1) lookup on
/// completion instead of a scan over every reward), and names are interned
/// once into a shared [`RewardNames`] table so per-replication results are
/// plain `Vec<f64>`s.
pub(crate) struct RewardTable {
    pub(crate) names: Arc<RewardNames>,
    /// `(slot, function)` for every rate reward that integrates over time
    /// (time-averaged or accumulated), in slot order.
    pub(crate) integrated: Vec<(u32, RewardFn)>,
    /// activity index → `(slot, amount)` impulses credited on its
    /// completion, dense over the model's activities.
    pub(crate) impulses: Vec<Vec<(u32, f64)>>,
    /// Per-slot finalisation rule, in slot order.
    pub(crate) finals: Vec<Finalise>,
}

impl RewardTable {
    /// Compiles `specs` against `model`, validating impulse activity
    /// references.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SanError::UnknownId`] if an impulse reward references
    /// an activity outside the model.
    pub(crate) fn compile(
        model: &crate::Model,
        specs: &[RewardSpec],
    ) -> Result<RewardTable, crate::SanError> {
        let mut names = RewardNames {
            names: Vec::with_capacity(specs.len()),
            index: std::collections::HashMap::with_capacity(specs.len()),
        };
        let mut integrated = Vec::new();
        let mut impulses = vec![Vec::new(); model.num_activities()];
        let mut finals = Vec::with_capacity(specs.len());
        for (slot, spec) in specs.iter().enumerate() {
            names.names.push(spec.name.clone());
            names.index.insert(spec.name.clone(), slot);
            match &spec.variant {
                RewardVariant::Rate { function, kind } => finals.push(match kind {
                    RewardKind::TimeAveraged => {
                        integrated.push((slot as u32, Arc::clone(function)));
                        Finalise::RateTimeAveraged
                    }
                    RewardKind::Accumulated => {
                        integrated.push((slot as u32, Arc::clone(function)));
                        Finalise::RateAccumulated
                    }
                    RewardKind::InstantOfTime => Finalise::RateInstant(Arc::clone(function)),
                }),
                RewardVariant::Impulse { activity, amount, kind } => {
                    let bucket = impulses.get_mut(activity.index()).ok_or_else(|| {
                        crate::SanError::UnknownId {
                            what: format!(
                                "activity #{} referenced by reward `{}`",
                                activity.index(),
                                spec.name
                            ),
                        }
                    })?;
                    bucket.push((slot as u32, *amount));
                    finals.push(match kind {
                        ImpulseKind::Total => Finalise::ImpulseTotal,
                        ImpulseKind::PerHour => Finalise::ImpulsePerHour,
                    });
                }
            }
        }
        Ok(RewardTable { names: Arc::new(names), integrated, impulses, finals })
    }

    /// Number of reward slots.
    pub(crate) fn len(&self) -> usize {
        self.finals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_names_and_kinds() {
        let r = RewardSpec::time_averaged_rate("avail", |_m| 1.0);
        assert_eq!(r.name(), "avail");
        assert!(matches!(r.variant, RewardVariant::Rate { kind: RewardKind::TimeAveraged, .. }));

        let r = RewardSpec::accumulated_rate("downtime", |_m| 1.0);
        assert!(matches!(r.variant, RewardVariant::Rate { kind: RewardKind::Accumulated, .. }));

        let r = RewardSpec::instant_of_time("final", |_m| 1.0);
        assert!(matches!(r.variant, RewardVariant::Rate { kind: RewardKind::InstantOfTime, .. }));

        let r = RewardSpec::impulse_total("replacements", ActivityId(3), 1.0);
        assert!(matches!(
            r.variant,
            RewardVariant::Impulse { kind: ImpulseKind::Total, amount, .. } if amount == 1.0
        ));

        let r = RewardSpec::impulse_per_hour("rate", ActivityId(3), 2.0);
        assert!(matches!(r.variant, RewardVariant::Impulse { kind: ImpulseKind::PerHour, .. }));
    }

    #[test]
    fn debug_output_mentions_kind() {
        let r = RewardSpec::impulse_total("x", ActivityId(1), 1.0);
        let text = format!("{r:?}");
        assert!(text.contains("impulse"));
        let r = RewardSpec::time_averaged_rate("y", |_m| 0.0);
        assert!(format!("{r:?}").contains("rate"));
    }
}
