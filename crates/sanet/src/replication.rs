//! Replicated simulation experiments: a thin adapter that binds the SAN
//! engine's per-replication runs to the crate-neutral execution machinery
//! in [`probdist`] — the work-stealing fan-out of
//! [`probdist::parallel::replicate`] and the precision-targeted stopping
//! of [`probdist::stats::StoppingRule`] / [`run_to_precision`]. All
//! scheduling and stopping policy lives there; this module only knows how
//! to run one SAN replication and how to summarise reward estimates.

use probdist::stats::{confidence_interval, run_to_precision, ConfidenceInterval, RunningStats};
use probdist::SimRng;

use crate::reward::RewardSpec;
use crate::{Model, SanError, Simulator};

pub use probdist::stats::StoppingRule;

/// Point estimate and confidence interval for one reward across
/// replications.
#[derive(Debug, Clone, PartialEq)]
pub struct RewardEstimate {
    /// The reward's name.
    pub name: String,
    /// Student-t confidence interval over the replication estimates.
    pub interval: ConfidenceInterval,
    /// The raw accumulator (count, mean, variance, min, max) across
    /// replications.
    pub stats: RunningStats,
}

/// Results of a replicated simulation experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    estimates: Vec<RewardEstimate>,
    /// Number of replications actually executed (for an adaptive run, the
    /// count at which the stopping rule was satisfied or capped).
    pub replications: usize,
    /// Simulation horizon of each replication (hours).
    pub horizon: f64,
    /// Total number of activity completions across all replications.
    pub total_events: u64,
}

impl RunSummary {
    /// The estimate for the named reward.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] if no reward with that name was
    /// registered.
    pub fn reward(&self, name: &str) -> Result<&RewardEstimate, SanError> {
        self.estimates
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| SanError::UnknownReward { name: name.to_string() })
    }

    /// All reward estimates, in registration order.
    pub fn rewards(&self) -> &[RewardEstimate] {
        &self.estimates
    }
}

/// A replicated simulation experiment: a model, a horizon, a set of reward
/// variables, and a replication policy.
///
/// The paper's Möbius experiments are exactly this shape: simulate the
/// composed CFS model for a long horizon, repeat with independent streams,
/// and report each reward at the 95 % confidence level.
pub struct Experiment {
    model: Model,
    horizon: f64,
    warmup: f64,
    rewards: Vec<RewardSpec>,
    confidence_level: f64,
    parallel: bool,
    workers: usize,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("model", &self.model.name())
            .field("horizon", &self.horizon)
            .field("warmup", &self.warmup)
            .field("rewards", &self.rewards.len())
            .field("confidence_level", &self.confidence_level)
            .field("parallel", &self.parallel)
            .field("workers", &self.workers)
            .finish()
    }
}

impl Experiment {
    /// Creates an experiment on `model` with the given simulation horizon in
    /// hours. Parallel execution is enabled by default.
    pub fn new(model: Model, horizon: f64) -> Self {
        Experiment {
            model,
            horizon,
            warmup: 0.0,
            rewards: Vec::new(),
            confidence_level: 0.95,
            parallel: true,
            workers: 0,
        }
    }

    /// Sets a warm-up period (hours) excluded from reward accumulation.
    pub fn set_warmup(&mut self, warmup: f64) -> &mut Self {
        self.warmup = warmup;
        self
    }

    /// Sets the confidence level used for reported intervals (default 0.95).
    pub fn set_confidence_level(&mut self, level: f64) -> &mut Self {
        self.confidence_level = level;
        self
    }

    /// Enables or disables parallel execution of replications.
    pub fn set_parallel(&mut self, parallel: bool) -> &mut Self {
        self.parallel = parallel;
        self
    }

    /// Sets the number of worker threads replications are fanned out across.
    /// `0` (the default) uses the machine's available parallelism; `1` forces
    /// serial execution. When an ambient [`probdist::parallel::Pool`] is
    /// installed (the experiment runs inside a `Study`), replications draw
    /// from that shared worker budget instead. Because every replication
    /// draws from its own index-derived RNG stream and results are collected
    /// in index order, the statistics are bit-identical for any worker count.
    pub fn set_workers(&mut self, workers: usize) -> &mut Self {
        self.workers = workers;
        self
    }

    /// Registers a reward variable to estimate.
    pub fn add_reward(&mut self, reward: RewardSpec) -> &mut Self {
        self.rewards.push(reward);
        self
    }

    /// The model under experiment.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Runs a fixed number of independent replications and summarises every
    /// reward.
    ///
    /// Replication `i` uses the RNG stream derived from `seed` and `i`, so
    /// results are reproducible and independent of execution order or
    /// parallelism.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `replications < 2` (a
    /// confidence interval needs at least two observations) and propagates
    /// any simulation error.
    pub fn run(&self, replications: usize, seed: u64) -> Result<RunSummary, SanError> {
        if replications < 2 {
            return Err(SanError::InvalidExperiment {
                reason: "at least two replications are required".into(),
            });
        }
        let results = self.run_indices(0, replications, seed)?;
        self.summarise(results)
    }

    /// Runs replication batches until `rule` is satisfied for every
    /// registered reward, or its cap is reached.
    ///
    /// The batches extend one index sequence from the same root seed, so an
    /// adaptive run that stops after `n` replications is bit-identical to
    /// [`Experiment::run`] with `replications = n`. The summary's
    /// `replications` field records the count actually used.
    ///
    /// # Errors
    ///
    /// Propagates any simulation or statistics error.
    pub fn run_until(&self, rule: StoppingRule, seed: u64) -> Result<RunSummary, SanError> {
        let results = run_to_precision(
            &rule,
            |range| self.run_indices(range.start, range.len(), seed),
            |results: &[crate::RunResult]| {
                for spec in &self.rewards {
                    let stats: RunningStats =
                        results.iter().map(|r| r.reward(spec.name()).unwrap_or(0.0)).collect();
                    let interval = confidence_interval(&stats, self.confidence_level)?;
                    if !rule.met_by(&interval) {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )?;
        self.summarise(results)
    }

    /// Runs a fixed number of replications and returns the raw per-
    /// replication results instead of a summary. Useful when rewards must
    /// be combined per replication (e.g. a derived measure such as cluster
    /// utility) before confidence intervals are computed.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `replications` is zero and
    /// propagates any simulation error.
    pub fn run_raw(
        &self,
        replications: usize,
        seed: u64,
    ) -> Result<Vec<crate::RunResult>, SanError> {
        if replications == 0 {
            return Err(SanError::InvalidExperiment {
                reason: "at least one replication is required".into(),
            });
        }
        self.run_indices(0, replications, seed)
    }

    /// Runs the replications of `range` (by stream index) and returns their
    /// raw results — the batch primitive adaptive callers drive through
    /// [`probdist::stats::run_to_precision`]. Replication `i` always draws
    /// from the stream derived from `(seed, i)`, so consecutive ranges
    /// extend one deterministic sequence.
    ///
    /// # Errors
    ///
    /// Propagates any simulation error.
    pub fn run_raw_range(
        &self,
        range: std::ops::Range<usize>,
        seed: u64,
    ) -> Result<Vec<crate::RunResult>, SanError> {
        self.run_indices(range.start, range.len(), seed)
    }

    /// Like [`Experiment::run_raw_range`], but checks `token` between
    /// work-unit batches: once it is cancelled (manually or by its
    /// deadline), in-flight replications finish and the call returns the
    /// **contiguous prefix** of the range that completed, with `true` for
    /// "truncated". Because replication `i` always draws from the stream
    /// derived from `(seed, i)`, the prefix is bit-identical to the first
    /// replications of an uninterrupted run — a statistically valid sample,
    /// just a smaller one.
    ///
    /// # Errors
    ///
    /// Propagates any simulation error.
    pub fn run_raw_range_interruptible(
        &self,
        range: std::ops::Range<usize>,
        seed: u64,
        token: &probdist::parallel::CancelToken,
    ) -> Result<(Vec<crate::RunResult>, bool), SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReplicate);
        let root = SimRng::seed_from_u64(seed);
        let workers = if self.parallel { self.workers } else { 1 };
        let sim = Simulator::new(&self.model);
        let table = crate::reward::RewardTable::compile(&self.model, &self.rewards)?;
        let (results, truncated) = probdist::parallel::replicate_with_interruptible(
            range,
            &root,
            workers,
            token,
            crate::RunScratch::new,
            |index, rng, scratch| {
                sim.run_with_table_scratch(&table, self.horizon, self.warmup, rng, scratch)
                    .map(|result| apply_chaos(index, result))
            },
        );
        let results: Result<Vec<_>, SanError> = results.into_iter().collect();
        Ok((results?, truncated))
    }

    /// Runs replications `start..start+count` (by stream index) and returns
    /// their raw results. The deterministic fan-out lives in
    /// [`probdist::parallel::replicate_with`], so the results are
    /// bit-identical for any worker count.
    fn run_indices(
        &self,
        start: usize,
        count: usize,
        seed: u64,
    ) -> Result<Vec<crate::RunResult>, SanError> {
        let _span = probdist::telemetry::span(probdist::telemetry::MetricId::SpanReplicate);
        let root = SimRng::seed_from_u64(seed);
        let workers = if self.parallel { self.workers } else { 1 };
        let sim = Simulator::new(&self.model);
        // Compile the reward set once per batch: every replication then
        // shares the interned name table (one `Arc` clone per result) and
        // the partitioned accumulator layout instead of re-deriving them.
        let table = crate::reward::RewardTable::compile(&self.model, &self.rewards)?;
        // Each worker owns one `RunScratch`, so the kernel's working buffers
        // are allocated once per worker rather than once per replication.
        probdist::parallel::replicate_with(
            start..start + count,
            &root,
            workers,
            crate::RunScratch::new,
            |index, rng, scratch| {
                sim.run_with_table_scratch(&table, self.horizon, self.warmup, rng, scratch)
                    .map(|result| apply_chaos(index, result))
            },
        )
        .into_iter()
        .collect()
    }

    fn summarise(&self, results: Vec<crate::RunResult>) -> Result<RunSummary, SanError> {
        let replications = results.len();
        let total_events = results.iter().map(|r| r.events).sum();
        let mut estimates = Vec::with_capacity(self.rewards.len());
        for spec in &self.rewards {
            let mut stats = RunningStats::new();
            for r in &results {
                stats.push(r.reward(spec.name())?);
            }
            let interval = confidence_interval(&stats, self.confidence_level)?;
            estimates.push(RewardEstimate { name: spec.name().to_string(), interval, stats });
        }
        Ok(RunSummary { estimates, replications, horizon: self.horizon, total_events })
    }
}

/// Routes one replication's reward values through the chaos fault registry:
/// with the `chaos` feature enabled and a scope active, each value may be
/// corrupted to NaN at the scope's configured probability (a deterministic
/// function of the chaos seed, the replication index, and the reward slot).
/// With the feature off this is an identity the compiler erases.
#[cfg(feature = "chaos")]
fn apply_chaos(index: usize, mut result: crate::RunResult) -> crate::RunResult {
    if probdist::chaos::is_active() {
        for (slot, value) in result.values.iter_mut().enumerate() {
            *value = probdist::chaos::corrupt_reward(index as u64, slot, *value);
        }
    }
    result
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
fn apply_chaos(_index: usize, result: crate::RunResult) -> crate::RunResult {
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardSpec;
    use crate::ModelBuilder;
    use probdist::Exponential;

    fn repairable_unit(mean_fail: f64, mean_repair: f64) -> (Model, crate::PlaceId) {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", Exponential::from_mean(mean_fail).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        b.timed_activity("repair", Exponential::from_mean(mean_repair).unwrap())
            .unwrap()
            .input_arc(down, 1)
            .output_arc(up, 1)
            .build()
            .unwrap();
        (b.build().unwrap(), up)
    }

    fn availability_reward(up: crate::PlaceId) -> RewardSpec {
        RewardSpec::time_averaged_rate("avail", move |m| if m.tokens(up) > 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn replications_estimate_analytic_availability() {
        let (model, up) = repairable_unit(1000.0, 10.0);
        let mut exp = Experiment::new(model, 100_000.0);
        exp.add_reward(availability_reward(up));
        let summary = exp.run(32, 7).unwrap();
        let est = summary.reward("avail").unwrap();
        let expected = 1000.0 / 1010.0;
        assert!(
            est.interval.contains(expected) || (est.interval.point - expected).abs() < 0.005,
            "interval {} vs expected {expected}",
            est.interval
        );
        assert_eq!(summary.replications, 32);
        assert!(summary.total_events > 0);
        assert!(summary.reward("nope").is_err());
        assert_eq!(summary.rewards().len(), 1);
    }

    #[test]
    fn serial_and_parallel_runs_agree_exactly() {
        let (model, up) = repairable_unit(200.0, 4.0);
        let mut exp = Experiment::new(model, 20_000.0);
        exp.add_reward(availability_reward(up));
        exp.set_parallel(false);
        let serial = exp.run(16, 11).unwrap();
        exp.set_parallel(true);
        let parallel = exp.run(16, 11).unwrap();
        assert_eq!(
            serial.reward("avail").unwrap().interval.point,
            parallel.reward("avail").unwrap().interval.point
        );
        assert_eq!(serial.total_events, parallel.total_events);
    }

    #[test]
    fn run_requires_at_least_two_replications() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 1000.0);
        exp.add_reward(availability_reward(up));
        assert!(exp.run(1, 1).is_err());
        assert!(exp.run(0, 1).is_err());
    }

    #[test]
    fn run_until_stops_when_precise() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 50_000.0);
        exp.add_reward(availability_reward(up));
        let rule = StoppingRule::new(0.01, 8, 64).unwrap();
        let summary = exp.run_until(rule, 3).unwrap();
        assert!(summary.replications >= 8 && summary.replications <= 64);
        let ci = &summary.reward("avail").unwrap().interval;
        // Either precision was reached or we hit the cap.
        assert!(ci.relative_half_width() <= 0.01 || summary.replications == 64);
    }

    #[test]
    fn adaptive_run_matches_fixed_run_of_the_same_count() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 50_000.0);
        exp.add_reward(availability_reward(up));
        let rule = StoppingRule::new(0.05, 8, 32).unwrap();
        let adaptive = exp.run_until(rule, 5).unwrap();
        let fixed = exp.run(adaptive.replications, 5).unwrap();
        assert_eq!(
            adaptive.reward("avail").unwrap().interval.point,
            fixed.reward("avail").unwrap().interval.point,
            "adaptive and fixed runs of the same length must be bit-identical"
        );
        assert_eq!(adaptive.total_events, fixed.total_events);
    }

    #[test]
    fn stopping_rule_is_validated_at_construction() {
        assert!(StoppingRule::new(0.1, 1, 10).is_err());
        assert!(StoppingRule::new(0.1, 10, 5).is_err());
        assert!(StoppingRule::new(0.0, 2, 10).is_err());
        assert!(StoppingRule::new(0.1, 2, 10).is_ok());
    }

    #[test]
    fn run_raw_returns_per_replication_results() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 5_000.0);
        exp.add_reward(availability_reward(up));
        assert!(exp.run_raw(0, 1).is_err());
        let raw = exp.run_raw(8, 21).unwrap();
        assert_eq!(raw.len(), 8);
        // Every replication reports the registered reward, and the mean of
        // the raw values matches the summarising run with the same seed.
        let mean: f64 = raw.iter().map(|r| r.reward("avail").unwrap()).sum::<f64>() / 8.0;
        let summary = exp.run(8, 21).unwrap();
        assert!((mean - summary.reward("avail").unwrap().interval.point).abs() < 1e-12);
    }

    #[test]
    fn run_raw_range_extends_the_same_sequence() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 5_000.0);
        exp.add_reward(availability_reward(up));
        let full = exp.run_raw(8, 33).unwrap();
        let head = exp.run_raw_range(0..4, 33).unwrap();
        let tail = exp.run_raw_range(4..8, 33).unwrap();
        for (a, b) in full.iter().zip(head.iter().chain(tail.iter())) {
            assert_eq!(a.reward("avail").unwrap(), b.reward("avail").unwrap());
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn interruptible_range_without_cancellation_matches_the_plain_runner() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 5_000.0);
        exp.add_reward(availability_reward(up));
        let plain = exp.run_raw_range(0..8, 33).unwrap();
        let token = probdist::parallel::CancelToken::new();
        let (interruptible, truncated) = exp.run_raw_range_interruptible(0..8, 33, &token).unwrap();
        assert!(!truncated);
        assert_eq!(plain, interruptible, "an unfired token must not change a single bit");
    }

    #[test]
    fn pre_cancelled_range_truncates_to_an_empty_prefix() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 5_000.0);
        exp.add_reward(availability_reward(up));
        let token = probdist::parallel::CancelToken::new();
        token.cancel();
        let (results, truncated) = exp.run_raw_range_interruptible(0..8, 33, &token).unwrap();
        assert!(truncated);
        assert!(results.is_empty());
    }

    #[test]
    fn run_result_round_trips_through_named_values() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 5_000.0);
        exp.add_reward(availability_reward(up));
        let original = exp.run_raw(2, 9).unwrap().remove(0);
        let pairs: Vec<(String, f64)> = original.iter().map(|(n, v)| (n.to_string(), v)).collect();
        let restored =
            crate::RunResult::from_named_values(pairs, original.events, original.end_time);
        assert_eq!(
            restored.reward("avail").unwrap().to_bits(),
            original.reward("avail").unwrap().to_bits()
        );
        assert_eq!(restored.events, original.events);
        assert_eq!(restored.end_time, original.end_time);
        assert!(restored.reward("missing").is_err());
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            original.iter().collect::<Vec<_>>(),
            "registration order survives the round trip"
        );
    }

    #[test]
    fn default_stopping_rule_is_sane() {
        let rule = StoppingRule::default();
        assert!(rule.min_replications() >= 2);
        assert!(rule.max_replications() >= rule.min_replications());
        assert!(rule.relative_half_width() > 0.0);
    }

    #[test]
    fn experiment_accessors_and_debug() {
        let (model, up) = repairable_unit(100.0, 1.0);
        let mut exp = Experiment::new(model, 1000.0);
        exp.add_reward(availability_reward(up)).set_warmup(10.0).set_confidence_level(0.9);
        assert_eq!(exp.model().name(), "unit");
        let dbg = format!("{exp:?}");
        assert!(dbg.contains("unit"));
        assert!(dbg.contains("1000"));
    }
}
