//! Importance sampling with failure biasing: exponential rate tilting of
//! failure activities, with the likelihood ratio accumulated event by event
//! through the compiled reward table.
//!
//! # Why
//!
//! The dependability measures this crate exists for — unavailability and
//! loss probabilities of highly redundant systems — are rare events: the
//! failure activities fire orders of magnitude more slowly than the repair
//! activities, so an unbiased simulation almost never reaches the states
//! the measure depends on. Failure biasing fixes that by simulating a
//! *tilted* model in which the designated failure activities fire at
//! `factor ×` their true rate, and weighting every replication by the
//! likelihood ratio `W = dP/dP′` of its sample path so the weighted
//! statistics still estimate the *original* model exactly.
//!
//! # How the likelihood ratio is accumulated
//!
//! For exponential activities the tilted model is a change of intensity,
//! and the Girsanov likelihood ratio of a path over `[0, T]` factors into
//! per-event terms:
//!
//! ```text
//! ln W = −ln(factor) · N_T  +  (factor − 1) · ∫₀ᵀ Λ_T(m_t) dt
//! ```
//!
//! where `N_T` counts completions of tilted activities and `Λ_T(m)` is the
//! total *original* rate of the tilted activities enabled in marking `m`.
//! Both pieces are exactly what the engine's compiled reward table already
//! accumulates event by event: `N_T` is an impulse reward bucketed on each
//! tilted activity, and the integral is an accumulated rate reward walked
//! between events. [`BiasedModel`] therefore needs **no kernel hooks at
//! all** — it registers two hidden reward families alongside the user's
//! rewards, and both execution kernels (event calendar and the naive
//! reference) support importance sampling identically, with the engine's
//! worker-count-invariant determinism intact.
//!
//! The tilt is exact for activities whose firing time is exponential —
//! fixed-rate [`Timing::Timed`] or marking-dependent [`Timing::TimedFn`]
//! (the memoryless property makes the keep-or-resample policy
//! law-equivalent, so the instantaneous intensity really is `rate(m_t)`).
//! [`FailureBias`] validation rejects non-exponential targets; a
//! marking-dependent target is probed on the initial marking and must
//! return an exponential for **every** reachable marking — the same style
//! of declared soundness contract as
//! [`enabling_reads`](crate::ActivityBuilder::enabling_reads).
//!
//! # Estimation
//!
//! [`BiasedExperiment`] runs replications of the tilted model and feeds
//! each reward observation with its weight `e^{ln W}` into a
//! [`WeightedRunning`] accumulator: the unbiased weighted mean is the
//! estimate, the Kish effective sample size diagnoses weight degeneracy,
//! and [`BiasedExperiment::run_until`] drives the ordinary
//! [`StoppingRule`] batch schedule with the relative-half-width-on-the-
//! weighted-mean criterion — refusing to stop before the rule's minimum
//! non-zero-observation support is reached
//! ([`StoppingRule::met_by_support`]).
//!
//! # Example
//!
//! ```
//! use probdist::Exponential;
//! use sanet::rare::{BiasedExperiment, FailureBias};
//! use sanet::reward::RewardSpec;
//! use sanet::ModelBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A unit that fails once per 100 000 hours: P(fail by 100 h) ≈ 1e-3.
//! let mut b = ModelBuilder::new("unit");
//! let up = b.add_place("up", 1)?;
//! let down = b.add_place("down", 0)?;
//! b.timed_activity("fail", Exponential::from_mean(100_000.0)?)?
//!     .input_arc(up, 1)
//!     .output_arc(down, 1)
//!     .build()?;
//! let model = b.build()?;
//!
//! // Bias the failure 200x and estimate with likelihood-ratio weights.
//! let bias = FailureBias::new(200.0, ["fail"])?;
//! let mut experiment = BiasedExperiment::new(&model, bias, 100.0)?;
//! experiment.add_reward(RewardSpec::instant_of_time("failed", move |m| {
//!     m.tokens(down) as f64
//! }));
//! let summary = experiment.run(400, 7)?;
//! let estimate = summary.reward("failed")?;
//! let exact = 1.0 - (-100.0_f64 / 100_000.0).exp();
//! assert!(estimate.interval.contains(exact));
//! # Ok(())
//! # }
//! ```

use probdist::stats::{run_to_precision, ConfidenceInterval, StoppingRule, WeightedRunning};
use probdist::{Dist, Exponential};

use crate::model::{Activity, DistFn};
use crate::reward::RewardSpec;
use crate::{ActivityId, Experiment, Model, RunResult, SanError, Timing};

/// Name of the hidden accumulated-rate reward carrying the integral term of
/// the log-likelihood ratio.
const LOG_LR_EXPOSURE: &str = "__rare/log_lr_exposure";

/// Name prefix of the hidden impulse rewards counting tilted-activity
/// completions (one per target, weighted by `−ln factor`).
const LOG_LR_FIRINGS: &str = "__rare/log_lr_firings/";

/// A failure-biasing specification: the named activities whose exponential
/// rates are tilted, and the common tilt factor.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureBias {
    factor: f64,
    activities: Vec<String>,
}

impl FailureBias {
    /// Creates a bias that multiplies the rate of every listed activity by
    /// `factor`. Factors above 1 make failures common (the rare-event use
    /// case); any positive factor is a valid change of measure.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] for a non-finite or
    /// non-positive factor, or an empty activity list.
    pub fn new<I, S>(factor: f64, activities: I) -> Result<Self, SanError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(SanError::InvalidExperiment {
                reason: format!("failure-bias factor must be positive and finite, got {factor}"),
            });
        }
        let activities: Vec<String> = activities.into_iter().map(Into::into).collect();
        if activities.is_empty() {
            return Err(SanError::InvalidExperiment {
                reason: "failure bias needs at least one target activity".into(),
            });
        }
        Ok(FailureBias { factor, activities })
    }

    /// The tilt factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The targeted activity names.
    pub fn activities(&self) -> &[String] {
        &self.activities
    }
}

/// How a target activity's original rate is recovered in a given marking,
/// for the exposure integral `Λ_T(m)`.
enum RateEval {
    /// Fixed exponential rate.
    Fixed(f64),
    /// Marking-dependent distribution; must return an exponential in every
    /// reachable marking (validated on the initial marking at build time).
    Marked(DistFn),
}

/// A model with tilted failure rates plus the hidden likelihood-ratio
/// rewards that reconstruct `ln W` from any [`RunResult`].
pub struct BiasedModel {
    tilted: Model,
    factor: f64,
    targets: Vec<ActivityId>,
    lr_rewards: Vec<RewardSpec>,
}

impl std::fmt::Debug for BiasedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiasedModel")
            .field("model", &self.tilted.name())
            .field("factor", &self.factor)
            .field("targets", &self.targets.len())
            .finish()
    }
}

impl BiasedModel {
    /// Builds the tilted model and its likelihood-ratio reward set.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownId`] for a target name that does not
    /// exist and [`SanError::InvalidExperiment`] for a target that is
    /// instantaneous or not exponentially timed (a marking-dependent
    /// target is probed on the initial marking).
    pub fn build(model: &Model, bias: &FailureBias) -> Result<BiasedModel, SanError> {
        let factor = bias.factor();
        let initial = model.initial_marking();
        let mut targets = Vec::with_capacity(bias.activities().len());
        let mut tilted_timings = Vec::with_capacity(bias.activities().len());
        let mut evaluators: Vec<(Activity, RateEval)> = Vec::with_capacity(targets.capacity());

        for name in bias.activities() {
            let id = model
                .activity(name)
                .ok_or_else(|| SanError::UnknownId { what: format!("bias target `{name}`") })?;
            let activity = model.activity_ref(id);
            let (tilted_timing, evaluator) = match &activity.timing {
                Timing::Timed(Dist::Exponential(exp)) => {
                    let tilted = Exponential::new(factor * exp.rate()).map_err(|e| {
                        SanError::InvalidExperiment {
                            reason: format!("tilting `{name}` by {factor}: {e}"),
                        }
                    })?;
                    (Timing::Timed(Dist::Exponential(tilted)), RateEval::Fixed(exp.rate()))
                }
                Timing::Timed(other) => {
                    return Err(SanError::InvalidExperiment {
                        reason: format!(
                            "bias target `{name}` has {} timing; rate tilting requires an \
                             exponential firing distribution",
                            other.family()
                        ),
                    });
                }
                Timing::TimedFn(dist_fn) => {
                    // Probe the marking-dependent distribution once; the
                    // declared contract is that it is exponential in every
                    // reachable marking.
                    match dist_fn(&initial) {
                        Dist::Exponential(_) => {}
                        other => {
                            return Err(SanError::InvalidExperiment {
                                reason: format!(
                                    "bias target `{name}` has a marking-dependent {} timing; \
                                     rate tilting requires an exponential in every marking",
                                    other.family()
                                ),
                            });
                        }
                    }
                    let original = dist_fn.clone();
                    let wrapper: DistFn = std::sync::Arc::new(move |m| match original(m) {
                        Dist::Exponential(exp) => {
                            // A valid exponential rate is positive and
                            // finite, so the tilt can only fail by
                            // overflowing to infinity; clamp to a finite
                            // rate instead of panicking a worker thread
                            // (at ~1e308/hour the firing is instantaneous
                            // either way).
                            let tilted = (factor * exp.rate()).min(f64::MAX / 2.0);
                            Dist::Exponential(
                                Exponential::new(tilted).expect("clamped rate is positive finite"),
                            )
                        }
                        other => other,
                    });
                    (Timing::TimedFn(wrapper), RateEval::Marked(dist_fn.clone()))
                }
                Timing::Instantaneous => {
                    return Err(SanError::InvalidExperiment {
                        reason: format!(
                            "bias target `{name}` is instantaneous; only timed exponential \
                             activities can be rate-tilted"
                        ),
                    });
                }
            };
            targets.push(id);
            tilted_timings.push((id, tilted_timing));
            evaluators.push((activity.clone(), evaluator));
        }

        let tilted = model.clone_with_timings(tilted_timings.into_iter());

        // The integral term: (factor − 1) · Σ over enabled targets of the
        // *original* rate, accumulated over simulated time by the engine's
        // ordinary rate-reward walk.
        let mut lr_rewards = vec![RewardSpec::accumulated_rate(LOG_LR_EXPOSURE, move |m| {
            let mut total = 0.0;
            for (activity, rate) in &evaluators {
                if activity.is_enabled(m) {
                    total += match rate {
                        RateEval::Fixed(r) => *r,
                        RateEval::Marked(f) => match f(m) {
                            Dist::Exponential(exp) => exp.rate(),
                            // Contract violation surfaces as NaN weights,
                            // not silently wrong estimates.
                            _ => f64::NAN,
                        },
                    };
                }
            }
            (factor - 1.0) * total
        })];
        // The per-completion term: each tilted firing multiplies W by
        // 1/factor, i.e. adds −ln(factor) to ln W.
        for &id in &targets {
            lr_rewards.push(RewardSpec::impulse_total(
                format!("{LOG_LR_FIRINGS}{}", id.index()),
                id,
                -factor.ln(),
            ));
        }

        Ok(BiasedModel { tilted, factor, targets, lr_rewards })
    }

    /// The tilted model (failure rates multiplied by the bias factor).
    pub fn model(&self) -> &Model {
        &self.tilted
    }

    /// The tilt factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The hidden reward specifications that must be registered alongside
    /// the user's rewards for [`BiasedModel::log_likelihood_ratio`] to
    /// work. [`BiasedExperiment`] does this automatically.
    pub fn likelihood_ratio_rewards(&self) -> &[RewardSpec] {
        &self.lr_rewards
    }

    /// Reconstructs `ln W = ln dP/dP′` of one replication from its run
    /// result — the sum of the hidden exposure and firing rewards (their
    /// names were interned once at build time; this is called per
    /// replication on the adaptive hot path and must not allocate).
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] if the hidden rewards were not
    /// registered for the run.
    pub fn log_likelihood_ratio(&self, result: &RunResult) -> Result<f64, SanError> {
        let mut log_weight = 0.0;
        for spec in &self.lr_rewards {
            log_weight += result.reward(spec.name())?;
        }
        Ok(log_weight)
    }
}

/// The canonical rare-event benchmark model: a fail-over pair whose
/// members fail at `lambda` (aggregate marking-dependent rate `n·λ`) and
/// are repaired one at a time at `mu`, with a latch place that records
/// whether both members were ever down simultaneously — the *hitting*
/// event whose probability within a finite horizon is the cross-validation
/// measure of the importance-sampling subsystem.
///
/// The matching analytic oracle is [`failover_pair_hitting_oracle`]: the
/// 3-state absorbing CTMC (`both up → one down → hit`) solved by
/// [`Ctmc::transient`](crate::ctmc::Ctmc::transient) uniformization. The
/// tests, benches, and examples that pin the subsystem all build the pair
/// through this one constructor so the SAN and its oracle cannot drift
/// apart.
#[derive(Debug, Clone)]
pub struct FailoverPair {
    /// The SAN model (activities `fail`, `repair`, instantaneous `latch`).
    pub model: Model,
    /// The latch place: holds one token once both members have been down
    /// simultaneously.
    pub latched: crate::PlaceId,
}

impl FailoverPair {
    /// The instant-of-time reward reading the latch: `P(hit by horizon)`
    /// under replication. Registered under the name `"hit"`.
    pub fn hit_reward(&self) -> RewardSpec {
        let latched = self.latched;
        RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64)
    }
}

/// Builds the [`FailoverPair`] benchmark model.
///
/// # Errors
///
/// Returns [`SanError::InvalidExperiment`] for non-positive rates.
pub fn failover_pair(lambda: f64, mu: f64) -> Result<FailoverPair, SanError> {
    let mut b = crate::ModelBuilder::new("failover_pair");
    let working = b.add_place("working", 2)?;
    let failed = b.add_place("failed", 0)?;
    let armed = b.add_place("armed", 1)?;
    let latched = b.add_place("latched", 0)?;
    Exponential::new(lambda).map_err(|e| SanError::InvalidExperiment {
        reason: format!("fail-over pair failure rate: {e}"),
    })?;
    b.timed_activity_fn("fail", move |m: &crate::Marking| {
        let n = m.tokens(working).max(1) as f64;
        Dist::Exponential(Exponential::new(n * lambda).expect("validated rate"))
    })?
    .input_arc(working, 1)
    .output_arc(failed, 1)
    .build()?;
    b.timed_activity(
        "repair",
        Exponential::new(mu).map_err(|e| SanError::InvalidExperiment {
            reason: format!("fail-over pair repair rate: {e}"),
        })?,
    )?
    .input_arc(failed, 1)
    .output_arc(working, 1)
    .build()?;
    b.instant_activity("latch")?
        .input_arc(armed, 1)
        .enabling_predicate(move |m| m.tokens(failed) >= 2)
        .output_arc(latched, 1)
        .build()?;
    Ok(FailoverPair { model: b.build()?, latched })
}

/// The exact hitting probability of the [`failover_pair`] model: the
/// absorbing 3-state CTMC (`0` both up, `1` one down, `2` hit) solved by
/// uniformization — `π₂(horizon)` starting from both up.
///
/// # Errors
///
/// Propagates CTMC construction and transient-solve errors.
pub fn failover_pair_hitting_oracle(lambda: f64, mu: f64, horizon: f64) -> Result<f64, SanError> {
    let mut chain = crate::ctmc::Ctmc::new(3)?;
    chain.add_transition(0, 1, 2.0 * lambda)?;
    chain.add_transition(1, 0, mu)?;
    chain.add_transition(1, 2, lambda)?;
    Ok(chain.transient(0, horizon)?[2])
}

/// Point estimate of one reward under the original law, reconstructed from
/// likelihood-ratio-weighted replications of the tilted model.
#[derive(Debug, Clone)]
pub struct WeightedEstimate {
    /// The reward's name.
    pub name: String,
    /// Student-t interval on the unbiased weighted mean.
    pub interval: ConfidenceInterval,
    /// The raw weighted accumulator (weighted mean/variance, effective
    /// sample size, non-zero support count).
    pub stats: WeightedRunning,
}

impl WeightedEstimate {
    /// Kish effective sample size of the weighted replications.
    pub fn effective_sample_size(&self) -> f64 {
        self.stats.effective_sample_size()
    }
}

/// Results of a replicated importance-sampled experiment.
#[derive(Debug, Clone)]
pub struct WeightedSummary {
    estimates: Vec<WeightedEstimate>,
    /// Replications actually executed.
    pub replications: usize,
    /// Simulation horizon of each replication (hours).
    pub horizon: f64,
    /// Total activity completions across all replications (of the tilted
    /// model — biased runs are busier than unbiased ones by design).
    pub total_events: u64,
}

impl WeightedSummary {
    /// The estimate for the named reward.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::UnknownReward`] if no reward with that name was
    /// registered.
    pub fn reward(&self, name: &str) -> Result<&WeightedEstimate, SanError> {
        self.estimates
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| SanError::UnknownReward { name: name.to_string() })
    }

    /// All reward estimates, in registration order.
    pub fn rewards(&self) -> &[WeightedEstimate] {
        &self.estimates
    }
}

/// A replicated importance-sampling experiment: an [`Experiment`] on the
/// tilted model whose reward estimates are reconstructed under the
/// original law through per-replication likelihood-ratio weights.
///
/// Replication `i` draws from the stream derived from `(seed, i)` exactly
/// like an unbiased [`Experiment`], so weighted results are bit-identical
/// at any worker count, and an adaptive [`BiasedExperiment::run_until`]
/// that stops at `n` replications matches a fixed run of `n`.
pub struct BiasedExperiment {
    experiment: Experiment,
    biased: BiasedModel,
    user_rewards: Vec<String>,
    confidence_level: f64,
}

impl std::fmt::Debug for BiasedExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BiasedExperiment")
            .field("biased", &self.biased)
            .field("rewards", &self.user_rewards.len())
            .field("confidence_level", &self.confidence_level)
            .finish()
    }
}

impl BiasedExperiment {
    /// Creates an importance-sampling experiment on `model` under `bias`
    /// with the given simulation horizon (hours).
    ///
    /// # Errors
    ///
    /// Propagates [`BiasedModel::build`] validation errors.
    pub fn new(model: &Model, bias: FailureBias, horizon: f64) -> Result<Self, SanError> {
        let biased = BiasedModel::build(model, &bias)?;
        let mut experiment = Experiment::new(biased.model().clone(), horizon);
        for reward in biased.likelihood_ratio_rewards() {
            experiment.add_reward(reward.clone());
        }
        Ok(BiasedExperiment {
            experiment,
            biased,
            user_rewards: Vec::new(),
            confidence_level: 0.95,
        })
    }

    /// Registers a reward variable to estimate (under the original law).
    pub fn add_reward(&mut self, reward: RewardSpec) -> &mut Self {
        self.user_rewards.push(reward.name().to_string());
        self.experiment.add_reward(reward);
        self
    }

    /// Sets the confidence level of reported intervals (default 0.95).
    pub fn set_confidence_level(&mut self, level: f64) -> &mut Self {
        self.confidence_level = level;
        self
    }

    /// Sets the worker-thread count for the replication fan-out (`0` =
    /// auto, `1` = serial; any value yields bit-identical statistics).
    pub fn set_workers(&mut self, workers: usize) -> &mut Self {
        self.experiment.set_workers(workers);
        self
    }

    /// The tilted model being simulated.
    pub fn biased_model(&self) -> &BiasedModel {
        &self.biased
    }

    /// Runs a fixed number of replications of the tilted model and
    /// summarises every reward with likelihood-ratio weights.
    ///
    /// # Errors
    ///
    /// Returns [`SanError::InvalidExperiment`] if `replications < 2` or a
    /// replication's weight overflows (a catastrophically mis-chosen
    /// tilt), and propagates simulation errors.
    pub fn run(&self, replications: usize, seed: u64) -> Result<WeightedSummary, SanError> {
        if replications < 2 {
            return Err(SanError::InvalidExperiment {
                reason: "at least two replications are required".into(),
            });
        }
        let results = self.experiment.run_raw_range(0..replications, seed)?;
        self.summarise(&results)
    }

    /// Runs replication batches until every registered reward's weighted
    /// interval satisfies `rule` — including its minimum non-zero support
    /// ([`StoppingRule::met_by_support`]), so an estimate cannot stop on a
    /// handful of lucky hits — or the cap is reached. Batches extend one
    /// index sequence, so an adaptive run of `n` replications is
    /// bit-identical to [`BiasedExperiment::run`] with `n`.
    ///
    /// # Errors
    ///
    /// Propagates any simulation or statistics error.
    pub fn run_until(&self, rule: StoppingRule, seed: u64) -> Result<WeightedSummary, SanError> {
        let results = run_to_precision(
            &rule,
            |range| self.experiment.run_raw_range(range, seed),
            |results: &[RunResult]| {
                for name in &self.user_rewards {
                    let acc = self.accumulate(name, results)?;
                    let Ok(interval) = acc.confidence_interval(self.confidence_level) else {
                        return Ok(false);
                    };
                    if !rule.met_by_support(&interval, acc.nonzero_count()) {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )?;
        self.summarise(&results)
    }

    /// Accumulates one reward's weighted observations across results.
    fn accumulate(&self, name: &str, results: &[RunResult]) -> Result<WeightedRunning, SanError> {
        let mut acc = WeightedRunning::new();
        for result in results {
            let log_weight = self.biased.log_likelihood_ratio(result)?;
            let weight = log_weight.exp();
            if !weight.is_finite() {
                return Err(SanError::InvalidExperiment {
                    reason: format!(
                        "likelihood-ratio weight overflowed (ln W = {log_weight}); the bias \
                         factor {} is catastrophically mis-chosen for this model",
                        self.biased.factor()
                    ),
                });
            }
            acc.push(result.reward(name)?, weight);
        }
        Ok(acc)
    }

    fn summarise(&self, results: &[RunResult]) -> Result<WeightedSummary, SanError> {
        let mut estimates = Vec::with_capacity(self.user_rewards.len());
        for name in &self.user_rewards {
            let stats = self.accumulate(name, results)?;
            let interval = stats.confidence_interval(self.confidence_level).map_err(|e| {
                SanError::InvalidExperiment { reason: format!("weighted interval: {e}") }
            })?;
            estimates.push(WeightedEstimate { name: name.clone(), interval, stats });
        }
        Ok(WeightedSummary {
            estimates,
            replications: results.len(),
            horizon: results.first().map_or(0.0, |r| r.end_time),
            total_events: results.iter().map(|r| r.events).sum(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Marking, ModelBuilder};
    use probdist::rare::{naive_replications_for, weighted_probability};
    use probdist::SimRng;

    fn single_unit(mean_fail: f64) -> (Model, crate::PlaceId) {
        let mut b = ModelBuilder::new("unit");
        let up = b.add_place("up", 1).unwrap();
        let down = b.add_place("down", 0).unwrap();
        b.timed_activity("fail", Exponential::from_mean(mean_fail).unwrap())
            .unwrap()
            .input_arc(up, 1)
            .output_arc(down, 1)
            .build()
            .unwrap();
        (b.build().unwrap(), down)
    }

    /// The shared fail-over-pair fixture, unwrapped for test brevity.
    fn pair(lambda: f64, mu: f64) -> (Model, crate::PlaceId) {
        let fixture = failover_pair(lambda, mu).unwrap();
        (fixture.model, fixture.latched)
    }

    fn pair_hitting_probability(lambda: f64, mu: f64, horizon: f64) -> f64 {
        failover_pair_hitting_oracle(lambda, mu, horizon).unwrap()
    }

    #[test]
    fn bias_validation_rejects_bad_specifications() {
        assert!(FailureBias::new(0.0, ["fail"]).is_err());
        assert!(FailureBias::new(-2.0, ["fail"]).is_err());
        assert!(FailureBias::new(f64::NAN, ["fail"]).is_err());
        assert!(FailureBias::new(f64::INFINITY, ["fail"]).is_err());
        assert!(FailureBias::new(10.0, Vec::<String>::new()).is_err());
        let bias = FailureBias::new(10.0, ["fail"]).unwrap();
        assert_eq!(bias.factor(), 10.0);
        assert_eq!(bias.activities(), ["fail".to_string()]);
    }

    #[test]
    fn biased_model_rejects_unknown_and_untiltable_targets() {
        let (model, _down) = single_unit(1000.0);
        let unknown = FailureBias::new(10.0, ["nope"]).unwrap();
        assert!(matches!(BiasedModel::build(&model, &unknown), Err(SanError::UnknownId { .. })));

        // Deterministic timing cannot be rate-tilted.
        let mut b = ModelBuilder::new("det");
        let p = b.add_place("p", 1).unwrap();
        b.timed_activity("tick", probdist::Deterministic::new(5.0).unwrap())
            .unwrap()
            .input_arc(p, 1)
            .output_arc(p, 1)
            .build()
            .unwrap();
        let det = b.build().unwrap();
        let bias = FailureBias::new(10.0, ["tick"]).unwrap();
        let err = BiasedModel::build(&det, &bias).unwrap_err();
        assert!(err.to_string().contains("deterministic"), "{err}");

        // Instantaneous activities cannot be tilted either.
        let mut b = ModelBuilder::new("inst");
        let p = b.add_place("p", 1).unwrap();
        let q = b.add_place("q", 0).unwrap();
        b.instant_activity("go").unwrap().input_arc(p, 1).output_arc(q, 1).build().unwrap();
        b.timed_activity("tick", Exponential::new(1.0).unwrap())
            .unwrap()
            .input_arc(q, 1)
            .build()
            .unwrap();
        let inst = b.build().unwrap();
        let bias = FailureBias::new(10.0, ["go"]).unwrap();
        let err = BiasedModel::build(&inst, &bias).unwrap_err();
        assert!(err.to_string().contains("instantaneous"), "{err}");

        // A marking-dependent non-exponential is caught by the probe.
        let mut b = ModelBuilder::new("markdet");
        let p = b.add_place("p", 1).unwrap();
        b.timed_activity_fn("drift", |_m: &Marking| {
            Dist::Deterministic(probdist::Deterministic::new(1.0).unwrap())
        })
        .unwrap()
        .input_arc(p, 1)
        .output_arc(p, 1)
        .build()
        .unwrap();
        let markdet = b.build().unwrap();
        let bias = FailureBias::new(10.0, ["drift"]).unwrap();
        assert!(BiasedModel::build(&markdet, &bias).is_err());
    }

    /// Exactness on a closed-form measure: P(single unit fails within T)
    /// is `1 − e^{−λT}`; the biased estimator must reproduce it within its
    /// own interval, and the mean likelihood-ratio weight must be ~1 (the
    /// unbiasedness identity `E′[W] = 1`).
    #[test]
    fn biased_estimate_matches_closed_form_failure_probability() {
        let (model, down) = single_unit(100_000.0);
        let horizon = 100.0;
        let exact = 1.0 - (-horizon / 100_000.0_f64).exp(); // ≈ 1e-3

        let bias = FailureBias::new(300.0, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&model, bias, horizon).unwrap();
        experiment
            .add_reward(RewardSpec::instant_of_time("failed", move |m| m.tokens(down) as f64));
        experiment.add_reward(RewardSpec::instant_of_time("one", |_m| 1.0));
        let summary = experiment.run(2000, 11).unwrap();

        let estimate = summary.reward("failed").unwrap();
        assert!(
            estimate.interval.contains(exact),
            "interval {} must contain exact {exact}",
            estimate.interval
        );
        assert!(estimate.interval.relative_half_width() < 0.25);
        assert!(estimate.effective_sample_size() > 10.0);

        // E′[W] = 1: the weighted mean of the constant-1 reward is the
        // sample mean of the weights.
        let ones = summary.reward("one").unwrap();
        assert!(
            (ones.stats.mean_product() - 1.0).abs() < 0.2,
            "mean weight {} must be ~1",
            ones.stats.mean_product()
        );
        assert!(summary.reward("missing").is_err());
        assert_eq!(summary.replications, 2000);
        assert!(summary.total_events > 0);
        assert_eq!(summary.rewards().len(), 2);
    }

    /// The acceptance-criterion cross-validation: on the fail-over pair,
    /// the importance-sampled hitting probability agrees with the exact
    /// `sanet::ctmc` transient solution within its reported 95 % interval.
    #[test]
    fn failover_pair_estimate_agrees_with_ctmc_within_its_interval() {
        let (lambda, mu, horizon) = (1e-3, 1.0, 10.0);
        let (model, latched) = pair(lambda, mu);
        let exact = pair_hitting_probability(lambda, mu, horizon);
        assert!(exact > 1e-6 && exact < 1e-4, "rare but resolvable: {exact}");

        let bias = FailureBias::new(60.0, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&model, bias, horizon).unwrap();
        experiment
            .add_reward(RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64));
        let summary = experiment.run(4000, 2024).unwrap();
        let estimate = summary.reward("hit").unwrap();
        assert!(
            estimate.interval.contains(exact),
            "interval {} must contain exact {exact}",
            estimate.interval
        );
        assert!(
            estimate.stats.nonzero_count() > 50,
            "the tilt must actually produce hits, got {}",
            estimate.stats.nonzero_count()
        );
    }

    /// The acceptance-criterion efficiency claim: the adaptive biased run
    /// reaches a 10 % relative half-width with ≥ 100x fewer replications
    /// than naive Monte Carlo would need for the same target.
    #[test]
    fn biased_estimator_beats_naive_by_two_orders_of_magnitude() {
        let (lambda, mu, horizon) = (1e-3, 1.0, 10.0);
        let (model, latched) = pair(lambda, mu);
        let exact = pair_hitting_probability(lambda, mu, horizon);

        let bias = FailureBias::new(60.0, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&model, bias, horizon).unwrap();
        experiment
            .add_reward(RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64));
        let rule = StoppingRule::new(0.1, 500, 100_000).unwrap();
        let summary = experiment.run_until(rule, 9).unwrap();
        let estimate = summary.reward("hit").unwrap();
        assert!(
            estimate.interval.relative_half_width() <= 0.1,
            "target precision must be reached, got {}",
            estimate.interval.relative_half_width()
        );
        assert!(estimate.interval.contains(exact), "{} vs {exact}", estimate.interval);

        let naive = naive_replications_for(exact, 0.1, 0.95).unwrap();
        let factor = naive / summary.replications as f64;
        assert!(
            factor >= 100.0,
            "IS used {} replications, naive needs {naive:.0}: factor {factor:.0} must be ≥ 100",
            summary.replications
        );

        // The probdist-level estimate agrees and reports the same story.
        let rare = weighted_probability(&estimate.stats, 0.95).unwrap();
        assert!((rare.interval.point - estimate.interval.point).abs() < 1e-12);
        assert!(rare.variance_reduction_factor > 100.0);
    }

    /// Adaptive runs are bit-identical to fixed runs of the same length,
    /// and worker counts do not change the statistics.
    #[test]
    fn biased_runs_are_deterministic_and_worker_invariant() {
        let (model, latched) = pair(1e-3, 1.0);
        let bias = FailureBias::new(60.0, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&model, bias.clone(), 10.0).unwrap();
        experiment
            .add_reward(RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64));
        experiment.set_workers(1);
        let serial = experiment.run(256, 5).unwrap();
        experiment.set_workers(4);
        let parallel = experiment.run(256, 5).unwrap();
        assert_eq!(
            serial.reward("hit").unwrap().stats,
            parallel.reward("hit").unwrap().stats,
            "weighted statistics must be bit-identical at any worker count"
        );

        let rule = StoppingRule::new(0.5, 64, 256).unwrap().with_min_nonzero(1);
        let adaptive = experiment.run_until(rule, 5).unwrap();
        let fixed = experiment.run(adaptive.replications, 5).unwrap();
        assert_eq!(
            adaptive.reward("hit").unwrap().stats,
            fixed.reward("hit").unwrap().stats,
            "adaptive ≡ fixed at equal replication counts"
        );
    }

    /// The zero-hit stopping-rule fix end to end: with a tilt too weak to
    /// produce hits, the adaptive run must refuse to stop early on the
    /// vacuous 0 ± 0 interval and run to its cap.
    #[test]
    fn zero_hit_measures_run_to_the_cap() {
        let (model, latched) = pair(1e-9, 1.0);
        let bias = FailureBias::new(1.0 + 1e-9, ["fail"]).unwrap();
        let mut experiment = BiasedExperiment::new(&model, bias, 1.0).unwrap();
        experiment
            .add_reward(RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64));
        let rule = StoppingRule::new(0.1, 8, 64).unwrap();
        let summary = experiment.run_until(rule, 3).unwrap();
        assert_eq!(
            summary.replications, 64,
            "an all-zero rare-event measure must exhaust the cap, not stop vacuously"
        );
        assert_eq!(summary.reward("hit").unwrap().interval.point, 0.0);
    }

    /// Importance sampling leaves the weighted estimate invariant across
    /// tilt factors (different factors, same answer — the change of
    /// measure is exact, not an approximation).
    #[test]
    fn different_tilts_estimate_the_same_probability() {
        let (model, down) = single_unit(10_000.0);
        let horizon = 50.0;
        let exact = 1.0 - (-horizon / 10_000.0_f64).exp(); // ≈ 5e-3
        for factor in [20.0, 80.0] {
            let bias = FailureBias::new(factor, ["fail"]).unwrap();
            let mut experiment = BiasedExperiment::new(&model, bias, horizon).unwrap();
            experiment
                .add_reward(RewardSpec::instant_of_time("failed", move |m| m.tokens(down) as f64));
            let summary = experiment.run(3000, 17).unwrap();
            let estimate = summary.reward("failed").unwrap();
            assert!(
                estimate.interval.contains(exact),
                "factor {factor}: {} vs {exact}",
                estimate.interval
            );
        }
    }

    /// Both kernels accumulate the same likelihood ratio: the biased model
    /// run through the calendar and reference kernels yields identical LR
    /// rewards (the whole point of routing the LR through the compiled
    /// reward table instead of kernel hooks).
    #[test]
    fn likelihood_ratio_is_kernel_independent() {
        let (model, latched) = pair(0.01, 0.5);
        let bias = FailureBias::new(10.0, ["fail"]).unwrap();
        let biased = BiasedModel::build(&model, &bias).unwrap();
        let mut rewards: Vec<RewardSpec> = biased.likelihood_ratio_rewards().to_vec();
        rewards.push(RewardSpec::instant_of_time("hit", move |m| m.tokens(latched) as f64));
        let sim = crate::Simulator::new(biased.model());
        let calendar = {
            let mut rng = SimRng::seed_from_u64(77);
            sim.run_traced(&rewards, 500.0, 0.0, &mut rng).unwrap().0
        };
        let reference = {
            let mut rng = SimRng::seed_from_u64(77);
            sim.run_reference(&rewards, 500.0, 0.0, &mut rng).unwrap()
        };
        assert_eq!(calendar, reference);
        let lr = biased.log_likelihood_ratio(&calendar).unwrap();
        assert!(lr.is_finite());
        assert_eq!(lr, biased.log_likelihood_ratio(&reference).unwrap());
    }
}
