use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};

/// Identifier of a place within a [`Model`](crate::Model).
///
/// Place ids are handed out by [`ModelBuilder::add_place`](crate::ModelBuilder::add_place)
/// and are valid only for the model they were created for (and for models
/// composed from it without renumbering — see [`crate::compose`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The raw index of the place in the model's place table.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The state of a stochastic activity network: a token count per place.
///
/// Token counts are unsigned; gate functions that would drive a count
/// negative saturate at zero (and this is considered a modelling error to be
/// caught in tests, not silently relied upon).
///
/// # Change log
///
/// While the simulation engine runs, the marking records every *written*
/// place (whether or not the token count actually changed) in an internal
/// change log. The event-calendar scheduler drains that log after each
/// event to re-examine only the activities whose enabling could have been
/// affected, instead of rescanning the whole model. Tracking is off for
/// markings created outside the engine, so reward functions and tests pay
/// nothing for it.
#[derive(Clone)]
pub struct Marking {
    tokens: Vec<u64>,
    /// Indices of places written since the last [`Marking::clear_log`]
    /// (possibly with duplicates); only populated while `tracking` is set.
    log: Vec<u32>,
    tracking: bool,
    /// Read recorder attached by the lint probe harness; `None` (the only
    /// state the engine ever sees) costs one predictable branch per read.
    reads: Option<Arc<ReadRecorder>>,
}

/// Shared log of place reads, attached to probe markings by
/// [`crate::lint`] to infer the true read footprint of gate predicates,
/// timing functions, and reward functions.
///
/// Interior mutability keeps `Marking: Send + Sync` while letting reads be
/// recorded through the `&Marking` the closures receive.
#[derive(Debug, Default)]
pub(crate) struct ReadRecorder {
    log: Mutex<Vec<u32>>,
}

impl ReadRecorder {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ReadRecorder::default())
    }

    fn record(&self, place: usize) {
        self.log.lock().expect("read recorder lock").push(place as u32);
    }

    /// Drains and returns the reads recorded since the last call.
    pub(crate) fn take(&self) -> Vec<u32> {
        std::mem::take(&mut *self.log.lock().expect("read recorder lock"))
    }
}

impl Marking {
    /// Creates a marking with the given token counts (indexed by place id).
    pub fn new(tokens: Vec<u64>) -> Self {
        Marking { tokens, log: Vec::new(), tracking: false, reads: None }
    }

    /// Creates a probe marking whose reads are recorded into `recorder`
    /// (lint use only).
    pub(crate) fn with_read_recorder(tokens: Vec<u64>, recorder: Arc<ReadRecorder>) -> Self {
        Marking { tokens, log: Vec::new(), tracking: false, reads: Some(recorder) }
    }

    /// Resets this marking in place to the state [`Marking::new`] would
    /// produce from `tokens`, reusing the existing allocations. Used by the
    /// kernels' per-worker scratch so a replication never reallocates the
    /// marking.
    pub(crate) fn reset_from(&mut self, tokens: impl Iterator<Item = u64>) {
        self.tokens.clear();
        self.tokens.extend(tokens);
        self.log.clear();
        self.tracking = false;
        self.reads = None;
    }

    /// Number of places in the marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the marking covers no places.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.record_read(place.0);
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn set_tokens(&mut self, place: PlaceId, count: u64) {
        self.record_write(place);
        self.tokens[place.0] = count;
    }

    /// Adds `count` tokens to `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn add_tokens(&mut self, place: PlaceId, count: u64) {
        self.record_write(place);
        self.tokens[place.0] += count;
    }

    /// Removes up to `count` tokens from `place`, saturating at zero.
    /// Returns the number actually removed.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u64) -> u64 {
        self.record_write(place);
        let available = self.tokens[place.0];
        let removed = available.min(count);
        self.tokens[place.0] = available - removed;
        removed
    }

    /// Whether `place` holds at least `count` tokens.
    pub fn has_at_least(&self, place: PlaceId, count: u64) -> bool {
        self.record_read(place.0);
        self.tokens[place.0] >= count
    }

    /// Total number of tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.record_read_all();
        self.tokens.iter().sum()
    }

    /// Raw access to the token vector (for reward functions that want to
    /// iterate).
    pub fn as_slice(&self) -> &[u64] {
        self.record_read_all();
        &self.tokens
    }

    #[inline]
    fn record_write(&mut self, place: PlaceId) {
        if self.tracking {
            self.log.push(place.0 as u32);
        }
    }

    #[inline]
    fn record_read(&self, place: usize) {
        if let Some(recorder) = &self.reads {
            recorder.record(place);
        }
    }

    #[inline]
    fn record_read_all(&self) {
        if let Some(recorder) = &self.reads {
            for place in 0..self.tokens.len() {
                recorder.record(place);
            }
        }
    }

    /// Turns on write tracking (engine use only).
    pub(crate) fn enable_tracking(&mut self) {
        self.tracking = true;
        self.log.clear();
    }

    /// Toggles write tracking without clearing the log, so the lint probe
    /// harness can interleave tracked gate-function writes with untracked
    /// structural arc updates.
    pub(crate) fn set_tracking(&mut self, tracking: bool) {
        self.tracking = tracking;
    }

    /// Place indices written since the last [`Marking::clear_log`], in write
    /// order and possibly with duplicates.
    pub(crate) fn log(&self) -> &[u32] {
        &self.log
    }

    /// Current length of the change log, for incremental consumers that
    /// process `log()[checkpoint..]`.
    pub(crate) fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Clears the change log (start of a new event).
    pub(crate) fn clear_log(&mut self) {
        self.log.clear();
    }
}

// The change log is scratch state owned by the engine: equality, ordering,
// formatting, and serialisation all consider token counts only.

impl PartialEq for Marking {
    fn eq(&self, other: &Self) -> bool {
        self.tokens == other.tokens
    }
}

impl Eq for Marking {}

impl std::fmt::Debug for Marking {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Marking").field("tokens", &self.tokens).finish()
    }
}

impl Serialize for Marking {
    fn to_value(&self) -> Value {
        Value::Object(vec![("tokens".to_string(), self.tokens.to_value())])
    }
}

impl Deserialize for Marking {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_accounting() {
        let mut m = Marking::new(vec![2, 0, 5]);
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        let p2 = PlaceId(2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.tokens(p0), 2);
        assert!(m.has_at_least(p2, 5));
        assert!(!m.has_at_least(p1, 1));

        m.add_tokens(p1, 3);
        assert_eq!(m.tokens(p1), 3);
        assert_eq!(m.remove_tokens(p1, 2), 2);
        assert_eq!(m.tokens(p1), 1);
        // Saturating removal.
        assert_eq!(m.remove_tokens(p1, 10), 1);
        assert_eq!(m.tokens(p1), 0);

        m.set_tokens(p0, 7);
        assert_eq!(m.total_tokens(), 7 + 5);
        assert_eq!(m.as_slice(), &[7, 0, 5]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_place_panics() {
        let m = Marking::new(vec![1]);
        let _ = m.tokens(PlaceId(3));
    }

    #[test]
    fn place_id_exposes_index() {
        assert_eq!(PlaceId(4).index(), 4);
    }

    #[test]
    fn change_log_records_writes_only_while_tracking() {
        let mut m = Marking::new(vec![1, 1]);
        // Writes before tracking leave no log.
        m.add_tokens(PlaceId(0), 1);
        assert!(m.log().is_empty());

        m.enable_tracking();
        m.set_tokens(PlaceId(1), 0);
        m.remove_tokens(PlaceId(0), 1);
        // A no-op write is still logged: the engine is conservative about
        // which writes *could* have changed an enabling condition.
        m.remove_tokens(PlaceId(0), 0);
        assert_eq!(m.log(), &[1, 0, 0]);
        assert_eq!(m.log_len(), 3);

        m.clear_log();
        assert!(m.log().is_empty());
    }

    #[test]
    fn read_recorder_captures_reads_through_shared_ref() {
        let recorder = ReadRecorder::new();
        let m = Marking::with_read_recorder(vec![1, 2, 3], Arc::clone(&recorder));
        let _ = m.tokens(PlaceId(2));
        let _ = m.has_at_least(PlaceId(0), 1);
        assert_eq!(recorder.take(), vec![2, 0]);
        // `take` drains.
        assert!(recorder.take().is_empty());
        // Whole-marking reads record every place.
        let _ = m.total_tokens();
        assert_eq!(recorder.take(), vec![0, 1, 2]);
        let _ = m.as_slice();
        assert_eq!(recorder.take(), vec![0, 1, 2]);
        // Plain markings record nothing and carry no recorder.
        let plain = Marking::new(vec![1]);
        let _ = plain.tokens(PlaceId(0));
        assert!(recorder.take().is_empty());
    }

    #[test]
    fn equality_and_serialisation_ignore_the_log() {
        let mut a = Marking::new(vec![3, 4]);
        let b = Marking::new(vec![3, 4]);
        a.enable_tracking();
        a.set_tokens(PlaceId(0), 3);
        assert_eq!(a, b);
        assert_eq!(serde::to_json(&a), serde::to_json(&b));
        assert_eq!(serde::to_json(&b), "{\"tokens\":[3,4]}");
        assert_eq!(format!("{a:?}"), "Marking { tokens: [3, 4] }");
    }
}
