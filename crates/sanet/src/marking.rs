use serde::{Deserialize, Serialize};

/// Identifier of a place within a [`Model`](crate::Model).
///
/// Place ids are handed out by [`ModelBuilder::add_place`](crate::ModelBuilder::add_place)
/// and are valid only for the model they were created for (and for models
/// composed from it without renumbering — see [`crate::compose`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaceId(pub(crate) usize);

impl PlaceId {
    /// The raw index of the place in the model's place table.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The state of a stochastic activity network: a token count per place.
///
/// Token counts are unsigned; gate functions that would drive a count
/// negative saturate at zero (and this is considered a modelling error to be
/// caught in tests, not silently relied upon).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// Creates a marking with the given token counts (indexed by place id).
    pub fn new(tokens: Vec<u64>) -> Self {
        Marking { tokens }
    }

    /// Number of places in the marking.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the marking covers no places.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Tokens currently in `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn tokens(&self, place: PlaceId) -> u64 {
        self.tokens[place.0]
    }

    /// Sets the token count of `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn set_tokens(&mut self, place: PlaceId, count: u64) {
        self.tokens[place.0] = count;
    }

    /// Adds `count` tokens to `place`.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn add_tokens(&mut self, place: PlaceId, count: u64) {
        self.tokens[place.0] += count;
    }

    /// Removes up to `count` tokens from `place`, saturating at zero.
    /// Returns the number actually removed.
    ///
    /// # Panics
    ///
    /// Panics if `place` does not belong to this marking's model.
    pub fn remove_tokens(&mut self, place: PlaceId, count: u64) -> u64 {
        let available = self.tokens[place.0];
        let removed = available.min(count);
        self.tokens[place.0] = available - removed;
        removed
    }

    /// Whether `place` holds at least `count` tokens.
    pub fn has_at_least(&self, place: PlaceId, count: u64) -> bool {
        self.tokens[place.0] >= count
    }

    /// Total number of tokens across all places.
    pub fn total_tokens(&self) -> u64 {
        self.tokens.iter().sum()
    }

    /// Raw access to the token vector (for reward functions that want to
    /// iterate).
    pub fn as_slice(&self) -> &[u64] {
        &self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_accounting() {
        let mut m = Marking::new(vec![2, 0, 5]);
        let p0 = PlaceId(0);
        let p1 = PlaceId(1);
        let p2 = PlaceId(2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.tokens(p0), 2);
        assert!(m.has_at_least(p2, 5));
        assert!(!m.has_at_least(p1, 1));

        m.add_tokens(p1, 3);
        assert_eq!(m.tokens(p1), 3);
        assert_eq!(m.remove_tokens(p1, 2), 2);
        assert_eq!(m.tokens(p1), 1);
        // Saturating removal.
        assert_eq!(m.remove_tokens(p1, 10), 1);
        assert_eq!(m.tokens(p1), 0);

        m.set_tokens(p0, 7);
        assert_eq!(m.total_tokens(), 7 + 5);
        assert_eq!(m.as_slice(), &[7, 0, 5]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_place_panics() {
        let m = Marking::new(vec![1]);
        let _ = m.tokens(PlaceId(3));
    }

    #[test]
    fn place_id_exposes_index() {
        assert_eq!(PlaceId(4).index(), 4);
    }
}
