//! Fixed-effort multilevel splitting (RESTART-style) for data-loss
//! probabilities.
//!
//! A redundancy scheme loses data only when `L` exposure windows overlap —
//! `replicas` concurrently exposed disks in a replicated store, or
//! `parity + 1` concurrent failures inside one RAID tier. At realistic
//! rates the joint event is in the 10⁻⁶..10⁻¹⁰ regime, so plain
//! Monte-Carlo missions essentially never observe it. Splitting factors
//! the rare event through the *exposure depth* level function
//! `max_t (concurrent exposures at t)`, which climbs to `L` one step at a
//! time:
//!
//! ```text
//! P(loss) = P(peak ≥ 1) · P(peak ≥ 2 | peak ≥ 1) · … · P(peak ≥ L | peak ≥ L−1)
//! ```
//!
//! Each conditional factor is *not* rare, so each is estimated by ordinary
//! sampling: stage `k` runs a fixed number of trials, every trial starting
//! from a state snapshot taken the moment a stage-`k−1` trial first
//! reached depth `k−1` (stage 1 starts fresh missions), and counts how
//! many reach depth `k` before the mission ends. The per-level passage
//! fractions combine through
//! [`probdist::rare::splitting_probability`] into a [`RareEventEstimate`]
//! with the independent-stages confidence interval, the naive-equivalent
//! effective sample size, and the measured variance-reduction factor.
//!
//! Restarting from a snapshot is statistically sound because a mission
//! ([`crate::ReplicationMission`] / [`crate::StorageMission`])
//! carries the full Markov state of the event-driven kernel — including
//! the already-drawn future event times in its calendar — so a
//! continuation with a fresh RNG stream is an exact conditional sample of
//! the remaining mission.
//!
//! # Determinism
//!
//! Trial `i` of level `k` always draws from the stream derived from the
//! root seed and `(k, i)`, and start snapshots are assigned by trial index
//! in collection order, so the whole estimate is a pure function of
//! `(simulator, horizon, trials, seed)` — bit-identical at any worker
//! count, pinned by the workspace determinism suite.
//!
//! # Example
//!
//! ```
//! use probdist::stats::StoppingRule;
//! use raidsim::{DiskModel, ReplicationConfig, ReplicationSimulator};
//!
//! # fn main() -> Result<(), raidsim::RaidError> {
//! let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 200_000.0, capacity_gb: 250.0 };
//! let config = ReplicationConfig::for_usable_capacity(12.0, 3, disk);
//! let sim = ReplicationSimulator::new(config)?;
//! // One year of a 3-way store with fast re-replication: deep sub-ppm.
//! let result = sim.splitting_loss_probability(8760.0, 200, 42, 0.95, 1)?;
//! assert!(result.estimate.interval.point < 1e-4);
//! # Ok(())
//! # }
//! ```

use probdist::rare::{splitting_probability, LevelPassage, RareEventEstimate};
use probdist::stats::StoppingRule;
use probdist::SimRng;

use crate::storage::validate_run;
use crate::{
    RaidError, ReplicationMission, ReplicationSimulator, StorageMission, StorageSimulator,
};

/// A mission kernel the splitting driver can restart from exposure-level
/// snapshots: cloneable full Markov state plus the advance-to-level
/// primitive. Implemented by [`ReplicationMission`] and
/// [`StorageMission`].
pub trait SplittableMission: Clone + Send + Sync {
    /// Highest exposure depth reached so far (monotone).
    fn exposure_peak(&self) -> u32;

    /// Advances until the exposure peak first reaches `level` (returns
    /// `true`) or the mission ends at its horizon (returns `false`).
    fn advance_to_exposure(&mut self, level: u32, rng: &mut SimRng) -> bool;
}

impl SplittableMission for ReplicationMission {
    fn exposure_peak(&self) -> u32 {
        self.exposure_peak()
    }

    fn advance_to_exposure(&mut self, level: u32, rng: &mut SimRng) -> bool {
        self.advance(rng, Some(level))
    }
}

impl SplittableMission for StorageMission {
    fn exposure_peak(&self) -> u32 {
        self.exposure_peak()
    }

    fn advance_to_exposure(&mut self, level: u32, rng: &mut SimRng) -> bool {
        self.advance(rng, Some(level))
    }
}

/// Result of a multilevel-splitting estimation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SplittingResult {
    /// The combined probability estimate (interval, effective sample size,
    /// total trials, variance-reduction factor vs naive Monte Carlo).
    pub estimate: RareEventEstimate,
    /// Conditional passage probability per level, in level order
    /// (`P(peak ≥ k | peak ≥ k−1)`); shorter than `loss_level` when a
    /// stage recorded zero passages and estimation stopped.
    pub level_probabilities: Vec<f64>,
    /// Trials per level of the final (or only) round.
    pub trials_per_level: usize,
    /// The exposure depth that constitutes data loss.
    pub loss_level: u32,
}

/// The generic fixed-effort splitting driver: estimates
/// `P(exposure peak ≥ loss_level within the mission horizon)`.
///
/// `start` builds a fresh stage-1 mission from an RNG stream. Trial `i` of
/// level `k` draws from `seed`-derived stream `(k, i)`; stage `k > 1`
/// restarts trial `i` from snapshot `i mod (number of snapshots)` of the
/// previous stage.
fn estimate_loss_probability<M, F>(
    loss_level: u32,
    trials_per_level: usize,
    seed: u64,
    confidence_level: f64,
    workers: usize,
    start: F,
) -> Result<SplittingResult, RaidError>
where
    M: SplittableMission,
    F: Fn(&mut SimRng) -> M + Sync,
{
    if loss_level == 0 {
        return Err(RaidError::InvalidRun {
            reason: "splitting needs a loss level of at least 1".into(),
        });
    }
    if trials_per_level < 2 {
        return Err(RaidError::InvalidRun {
            reason: "splitting needs at least two trials per level".into(),
        });
    }

    let mut passages: Vec<LevelPassage> = Vec::with_capacity(loss_level as usize);
    let mut snapshots: Vec<M> = Vec::new();
    for level in 1..=loss_level {
        // Per-level root stream: trial i then derives (root, i) inside
        // `replicate`, so every (level, trial) pair is well separated and
        // the batch is worker-count invariant.
        let root = SimRng::seed_from_u64(seed).derive_stream(level as u64);
        let keep_states = level < loss_level;
        let outcomes: Vec<(bool, Option<M>)> =
            probdist::parallel::replicate(0..trials_per_level, &root, workers, |i, rng| {
                let mut mission =
                    if level == 1 { start(rng) } else { snapshots[i % snapshots.len()].clone() };
                let reached = mission.advance_to_exposure(level, rng);
                debug_assert!(!reached || mission.exposure_peak() >= level);
                (reached, (reached && keep_states).then_some(mission))
            });
        let hits = outcomes.iter().filter(|(reached, _)| *reached).count();
        probdist::telemetry::counter_add(
            probdist::telemetry::MetricId::SplittingLevelHits,
            hits as u64,
        );
        passages.push(LevelPassage { hits, trials: trials_per_level });
        if hits == 0 {
            // No trial passed: the product estimate is zero and deeper
            // stages have no start states.
            break;
        }
        if keep_states {
            snapshots = outcomes.into_iter().filter_map(|(_, m)| m).collect();
        }
    }

    let estimate = splitting_probability(&passages, confidence_level)
        .map_err(|e| RaidError::InvalidRun { reason: format!("splitting estimate: {e}") })?;
    Ok(SplittingResult {
        level_probabilities: passages.iter().map(|p| p.hits as f64 / p.trials as f64).collect(),
        estimate,
        trials_per_level,
        loss_level,
    })
}

/// The adaptive wrapper: reruns the fixed-effort estimate with a doubling
/// per-level trial count until the relative half-width target (and the
/// rule's minimum non-zero final-level support,
/// [`StoppingRule::met_by_support`]) is met or the per-level cap is
/// reached. Each round is deterministic, so the whole loop is a pure
/// function of `(rule, seed)`; the returned estimate's `replications`
/// records the total trials spent across *all* rounds — the honest cost
/// the variance-reduction factor is recomputed against.
fn estimate_until<M, F>(
    loss_level: u32,
    rule: &StoppingRule,
    seed: u64,
    confidence_level: f64,
    workers: usize,
    start: F,
) -> Result<SplittingResult, RaidError>
where
    M: SplittableMission,
    F: Fn(&mut SimRng) -> M + Sync,
{
    let mut trials = rule.min_replications().max(2);
    let mut spent = 0usize;
    loop {
        let mut result =
            estimate_loss_probability(loss_level, trials, seed, confidence_level, workers, &start)?;
        spent += result.estimate.replications;
        let met = rule.met_by_support(&result.estimate.interval, result.estimate.hits);
        if met || trials >= rule.max_replications() {
            // Account the full spend and rescale the variance-reduction
            // factor to it (naive-equivalent ESS is unchanged).
            result.estimate.replications = spent;
            if result.estimate.effective_sample_size > 0.0 {
                result.estimate.variance_reduction_factor =
                    result.estimate.effective_sample_size / spent as f64;
            }
            return Ok(result);
        }
        trials = (trials * 2).min(rule.max_replications());
    }
}

impl ReplicationSimulator {
    /// Estimates the probability of any data loss within `horizon_hours`
    /// by fixed-effort multilevel splitting over exposure depth (levels
    /// `1..=replicas`), with `trials_per_level` trials per stage.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon, a
    /// confidence level outside `(0, 1)`, or fewer than two trials per
    /// level.
    pub fn splitting_loss_probability(
        &self,
        horizon_hours: f64,
        trials_per_level: usize,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<SplittingResult, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        estimate_loss_probability(
            self.config().replicas,
            trials_per_level,
            seed,
            confidence_level,
            workers,
            |rng| self.start_mission(horizon_hours, rng),
        )
    }

    /// Adaptive variant of
    /// [`ReplicationSimulator::splitting_loss_probability`]: doubles the
    /// per-level trial count (from the rule's minimum to its cap) until
    /// the loss-probability interval meets the rule's relative target with
    /// sufficient final-level support.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or a
    /// confidence level outside `(0, 1)`.
    pub fn splitting_loss_probability_until(
        &self,
        horizon_hours: f64,
        rule: &StoppingRule,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<SplittingResult, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        estimate_until(self.config().replicas, rule, seed, confidence_level, workers, |rng| {
            self.start_mission(horizon_hours, rng)
        })
    }
}

impl StorageSimulator {
    /// Estimates the probability of any data loss within `horizon_hours`
    /// by fixed-effort multilevel splitting over exposure depth — the
    /// concurrent failed-disk count within a single tier, levels
    /// `1..=parity + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon, a
    /// confidence level outside `(0, 1)`, or fewer than two trials per
    /// level.
    pub fn splitting_loss_probability(
        &self,
        horizon_hours: f64,
        trials_per_level: usize,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<SplittingResult, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        estimate_loss_probability(
            self.config().geometry.parity_disks + 1,
            trials_per_level,
            seed,
            confidence_level,
            workers,
            |rng| self.start_mission(horizon_hours, rng),
        )
    }

    /// Adaptive variant of
    /// [`StorageSimulator::splitting_loss_probability`]: doubles the
    /// per-level trial count until the loss-probability interval meets the
    /// rule's relative target with sufficient final-level support.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or a
    /// confidence level outside `(0, 1)`.
    pub fn splitting_loss_probability_until(
        &self,
        horizon_hours: f64,
        rule: &StoppingRule,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<SplittingResult, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        estimate_until(
            self.config().geometry.parity_disks + 1,
            rule,
            seed,
            confidence_level,
            workers,
            |rng| self.start_mission(horizon_hours, rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModel, RaidGeometry, ReplicationConfig, StorageConfig};
    use probdist::{Distribution, Weibull};

    fn exponential_disk(mtbf_hours: f64) -> DiskModel {
        DiskModel { weibull_shape: 1.0, mtbf_hours, capacity_gb: 250.0 }
    }

    /// Level 1 of a 1-way store is plain "any disk fails before the
    /// horizon", whose probability is the closed form
    /// `1 − S(T)^disks` — a known-answer check of the whole driver.
    #[test]
    fn single_level_matches_first_failure_closed_form() {
        let disk = exponential_disk(50_000.0);
        let config = ReplicationConfig {
            disks: 8,
            replicas: 1,
            disk,
            re_replication_hours: 2.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let horizon = 2_000.0;
        let result = sim.splitting_loss_probability(horizon, 4000, 7, 0.95, 1).unwrap();
        let lifetime = Weibull::from_shape_and_mean(1.0, 50_000.0).unwrap();
        let exact = 1.0 - lifetime.survival(horizon).powi(8);
        assert_eq!(result.loss_level, 1);
        assert_eq!(result.level_probabilities.len(), 1);
        assert!(
            result.estimate.interval.contains(exact)
                || (result.estimate.interval.point - exact).abs() / exact < 0.05,
            "estimate {} vs exact {exact}",
            result.estimate.interval
        );
    }

    /// Splitting agrees with plain Monte Carlo on a config where the loss
    /// probability is large enough for both to resolve.
    #[test]
    fn splitting_agrees_with_naive_monte_carlo_when_both_can_see_the_event() {
        let disk = exponential_disk(4_000.0);
        let config = ReplicationConfig {
            disks: 20,
            replicas: 2,
            disk,
            re_replication_hours: 24.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let horizon = 500.0;

        let split = sim.splitting_loss_probability(horizon, 2000, 3, 0.95, 1).unwrap();
        // Naive estimate of the same probability from many missions.
        let summary = sim.run_with(horizon, 4000, 11, 0.95, 0).unwrap();
        let naive = summary.prob_any_data_loss;
        assert!(naive > 0.01, "config must be naive-resolvable, got {naive}");
        let diff = (split.estimate.interval.point - naive).abs();
        assert!(
            diff < 3.0 * split.estimate.interval.half_width + 0.02,
            "splitting {} vs naive {naive}",
            split.estimate.interval
        );
        assert!(split.estimate.variance_reduction_factor > 0.0);
    }

    /// The regime the subsystem exists for: a 3-way store whose loss
    /// probability is far below anything 4000 naive missions could see,
    /// resolved with a finite relative error.
    #[test]
    fn splitting_resolves_probabilities_naive_sampling_cannot() {
        let disk = exponential_disk(20_000.0);
        let config = ReplicationConfig {
            disks: 24,
            replicas: 3,
            disk,
            re_replication_hours: 4.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let result = sim.splitting_loss_probability(2190.0, 6000, 5, 0.95, 0).unwrap();
        let p = result.estimate.interval.point;
        assert!(p > 0.0, "the estimator must resolve the event");
        assert!(p < 1e-3, "this regime is rare, got {p}");
        assert_eq!(result.level_probabilities.len(), 3);
        assert!(result.estimate.relative_error() < 0.5);
        assert!(
            result.estimate.variance_reduction_factor > 1.0,
            "VRF {} must beat naive",
            result.estimate.variance_reduction_factor
        );
    }

    #[test]
    fn raid_splitting_levels_track_parity() {
        let mut config = StorageConfig::abe_scratch();
        config.controllers = None;
        config.geometry = RaidGeometry::raid6_8p2();
        config.tiers = 24;
        config.disk = exponential_disk(30_000.0);
        let sim = StorageSimulator::new(config).unwrap();
        let result = sim.splitting_loss_probability(8760.0, 400, 9, 0.95, 0).unwrap();
        assert_eq!(result.loss_level, 3, "8+2 loses data at 3 concurrent failures");
        assert!(result.estimate.interval.point < 0.5);
        // More parity pushes the loss level (and rarity) up.
        let mut plus3 = StorageConfig::abe_scratch();
        plus3.controllers = None;
        plus3.geometry = RaidGeometry::raid_8p3();
        plus3.tiers = 24;
        plus3.disk = exponential_disk(30_000.0);
        let sim3 = StorageSimulator::new(plus3).unwrap();
        let result3 = sim3.splitting_loss_probability(8760.0, 400, 9, 0.95, 0).unwrap();
        assert_eq!(result3.loss_level, 4);
        assert!(
            result3.estimate.interval.point <= result.estimate.interval.point,
            "8+3 {} must not lose more than 8+2 {}",
            result3.estimate.interval.point,
            result.estimate.interval.point
        );
    }

    #[test]
    fn splitting_is_deterministic_and_worker_invariant() {
        let disk = exponential_disk(20_000.0);
        let config = ReplicationConfig {
            disks: 30,
            replicas: 3,
            disk,
            re_replication_hours: 24.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let serial = sim.splitting_loss_probability(4380.0, 300, 21, 0.95, 1).unwrap();
        let parallel = sim.splitting_loss_probability(4380.0, 300, 21, 0.95, 4).unwrap();
        assert_eq!(serial, parallel, "splitting must be bit-identical at any worker count");

        let mut raid = StorageConfig::abe_scratch();
        raid.controllers = None;
        raid.tiers = 12;
        raid.disk = exponential_disk(20_000.0);
        let rsim = StorageSimulator::new(raid).unwrap();
        let a = rsim.splitting_loss_probability(4380.0, 200, 33, 0.95, 1).unwrap();
        let b = rsim.splitting_loss_probability(4380.0, 200, 33, 0.95, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_splitting_respects_rule_bounds() {
        let disk = exponential_disk(3_000.0);
        let config = ReplicationConfig {
            disks: 24,
            replicas: 2,
            disk,
            re_replication_hours: 24.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let rule = StoppingRule::new(0.2, 100, 3200).unwrap();
        let result = sim.splitting_loss_probability_until(2000.0, &rule, 13, 0.95, 0).unwrap();
        assert!(result.trials_per_level <= 3200);
        assert!(result.estimate.replications >= result.trials_per_level);
        assert!(
            result.estimate.relative_error() <= 0.2 || result.trials_per_level == 3200,
            "either the target is met or the cap was hit: {} @ {}",
            result.estimate.relative_error(),
            result.trials_per_level
        );
        // Deterministic: the adaptive loop replays identically.
        let again = sim.splitting_loss_probability_until(2000.0, &rule, 13, 0.95, 2).unwrap();
        assert_eq!(result, again);
    }

    #[test]
    fn splitting_validates_parameters() {
        let sim = ReplicationSimulator::new(ReplicationConfig::for_usable_capacity(
            1.0,
            2,
            exponential_disk(10_000.0),
        ))
        .unwrap();
        assert!(sim.splitting_loss_probability(0.0, 100, 1, 0.95, 1).is_err());
        assert!(sim.splitting_loss_probability(100.0, 1, 1, 0.95, 1).is_err());
        assert!(sim.splitting_loss_probability(100.0, 100, 1, 1.5, 1).is_err());
        let rule = StoppingRule::new(0.2, 16, 64).unwrap();
        assert!(sim.splitting_loss_probability_until(0.0, &rule, 1, 0.95, 1).is_err());
    }

    /// An impossible-to-reach deep level reports "zero with zero
    /// information", never a confident zero.
    #[test]
    fn unreachable_levels_report_zero_without_confidence() {
        let disk = exponential_disk(1e9);
        let config = ReplicationConfig {
            disks: 3,
            replicas: 3,
            disk,
            re_replication_hours: 0.1,
            replacement_hours: 0.1,
            data_loss_recovery_hours: 1.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let result = sim.splitting_loss_probability(10.0, 50, 3, 0.95, 1).unwrap();
        assert_eq!(result.estimate.interval.point, 0.0);
        assert_eq!(result.estimate.relative_error(), f64::INFINITY);
        let rule = StoppingRule::new(0.1, 2, 10).unwrap();
        assert!(!rule.met_by(&result.estimate.interval));
    }
}
