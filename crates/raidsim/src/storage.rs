use std::cmp::Ordering;
use std::collections::BinaryHeap;

use probdist::stats::{
    confidence_interval, run_to_precision, ConfidenceInterval, RunningStats, StoppingRule,
};
use probdist::{Distribution, Exponential, SimRng, Weibull};
use serde::{Deserialize, Serialize};

use crate::{RaidError, StorageConfig};

/// Hours per week, used for replacement-rate normalisation.
const HOURS_PER_WEEK: f64 = 168.0;

/// Raw statistics of a single Monte-Carlo replication.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageRunStats {
    /// Hours during which the storage system was unavailable (a tier in
    /// data-loss recovery or a DDN controller pair entirely failed).
    pub downtime_hours: f64,
    /// Number of unrecoverable tier failures (more concurrent disk failures
    /// than parity).
    pub data_loss_events: u64,
    /// Number of disk replacements performed.
    pub disk_replacements: u64,
    /// Hours during which at least one controller pair was entirely failed.
    pub controller_downtime_hours: f64,
    /// Length of the simulated mission, hours.
    pub horizon_hours: f64,
}

impl StorageRunStats {
    /// Availability over the mission: `1 − downtime / horizon`.
    pub fn availability(&self) -> f64 {
        (1.0 - self.downtime_hours / self.horizon_hours).clamp(0.0, 1.0)
    }

    /// Disk replacements per week.
    pub fn replacements_per_week(&self) -> f64 {
        self.disk_replacements as f64 / (self.horizon_hours / HOURS_PER_WEEK)
    }
}

/// Aggregated results over many replications, reported with 95 % confidence
/// intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageSummary {
    /// Storage availability.
    pub availability: ConfidenceInterval,
    /// Average disk replacements per week.
    pub replacements_per_week: ConfidenceInterval,
    /// Average number of data-loss events per mission.
    pub data_loss_events: ConfidenceInterval,
    /// Fraction of replications that suffered at least one data-loss event.
    pub prob_any_data_loss: f64,
    /// Number of replications run.
    pub replications: usize,
    /// Mission length, hours.
    pub horizon_hours: f64,
}

/// Validates the shared run parameters of both storage Monte-Carlo
/// engines (the RAID simulator and [`crate::replication`]): a positive
/// finite horizon and a confidence level in `(0, 1)`.
pub(crate) fn validate_run(horizon_hours: f64, confidence_level: f64) -> Result<(), RaidError> {
    if !(horizon_hours.is_finite() && horizon_hours > 0.0) {
        return Err(RaidError::InvalidRun {
            reason: format!("horizon must be positive, got {horizon_hours}"),
        });
    }
    if !(confidence_level > 0.0 && confidence_level < 1.0) {
        return Err(RaidError::InvalidRun {
            reason: format!("confidence level must be in (0, 1), got {confidence_level}"),
        });
    }
    Ok(())
}

/// Telemetry flush for one completed mission: one mission counted, its
/// data-loss events added. Called by both storage kernels' `run_once` /
/// `run_once_reusing` — the replication-path entry points — so the counts
/// are a pure function of the executed replication set.
pub(crate) fn record_mission(stats: &StorageRunStats) {
    use probdist::telemetry::{counter_add, counter_inc, MetricId};
    counter_inc(MetricId::RaidMissions);
    counter_add(MetricId::RaidLossEvents, stats.data_loss_events);
}

/// Aggregates raw replication results into a [`StorageSummary`] at the
/// given confidence level. Shared by the RAID simulator and the n-way
/// replication simulator ([`crate::replication`]) so both redundancy
/// families report through exactly the same statistics pipeline.
pub(crate) fn summarise_runs(
    runs: &[StorageRunStats],
    horizon_hours: f64,
    confidence_level: f64,
) -> Result<StorageSummary, RaidError> {
    let availability: RunningStats = runs.iter().map(StorageRunStats::availability).collect();
    let per_week: RunningStats = runs.iter().map(StorageRunStats::replacements_per_week).collect();
    let losses: RunningStats = runs.iter().map(|r| r.data_loss_events as f64).collect();
    let any_loss = runs.iter().filter(|r| r.data_loss_events > 0).count();

    Ok(StorageSummary {
        availability: confidence_interval(&availability, confidence_level)?,
        replacements_per_week: confidence_interval(&per_week, confidence_level)?,
        data_loss_events: confidence_interval(&losses, confidence_level)?,
        prob_any_data_loss: any_loss as f64 / runs.len() as f64,
        replications: runs.len(),
        horizon_hours,
    })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    DiskFailure { disk: u32, generation: u32 },
    DiskRestored { disk: u32, generation: u32 },
    TierRecovered { tier: u32, generation: u32 },
    ControllerFailure { unit: u32, slot: u8 },
    ControllerRepaired { unit: u32, slot: u8 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse the time ordering so BinaryHeap pops the earliest event.
        other.time.total_cmp(&self.time)
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven Monte-Carlo simulator of a scratch-partition storage system.
///
/// See the crate-level documentation for the modelled failure and recovery
/// behaviour.
#[derive(Debug, Clone)]
pub struct StorageSimulator {
    config: StorageConfig,
    lifetime: Weibull,
}

impl StorageSimulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: StorageConfig) -> Result<Self, RaidError> {
        config.validate()?;
        let lifetime = config.disk.lifetime()?;
        Ok(StorageSimulator { config, lifetime })
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Runs `replications` independent missions of `horizon_hours` each and
    /// aggregates the results at the 95 % confidence level. Replications are
    /// executed in parallel when more than a handful are requested.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or fewer
    /// than two replications.
    pub fn run(
        &self,
        horizon_hours: f64,
        replications: usize,
        seed: u64,
    ) -> Result<StorageSummary, RaidError> {
        self.run_with(horizon_hours, replications, seed, 0.95, 0)
    }

    /// Runs `replications` independent missions with an explicit confidence
    /// level and worker-thread count. `workers == 0` uses the machine's
    /// available parallelism; `1` forces serial execution. Every replication
    /// draws from the RNG stream derived from its own index and results are
    /// collected in index order, so the aggregated statistics are
    /// bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon, fewer
    /// than two replications, or a confidence level outside `(0, 1)`.
    pub fn run_with(
        &self,
        horizon_hours: f64,
        replications: usize,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<StorageSummary, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        if replications < 2 {
            return Err(RaidError::InvalidRun {
                reason: "at least two replications are required".into(),
            });
        }

        let root = SimRng::seed_from_u64(seed);
        // Each worker keeps one mission as scratch: after the first
        // replication, later missions re-prime the same event queue and
        // per-disk state in place instead of allocating afresh.
        let runs: Vec<StorageRunStats> = probdist::parallel::replicate_with(
            0..replications,
            &root,
            workers,
            || None,
            |_, rng, slot| self.run_once_reusing(horizon_hours, rng, slot),
        );
        self.summarise(&runs, horizon_hours, confidence_level)
    }

    /// Runs replication batches until `rule` is satisfied — every tracked
    /// measure's relative CI half-width below the target — or its cap is
    /// reached, and aggregates exactly like [`StorageSimulator::run_with`].
    ///
    /// Availability and replacements-per-week are tracked by the rule;
    /// data-loss events are not (a rare-event count has a near-zero mean,
    /// so its *relative* width is ill-defined and would force every run to
    /// the cap). The summary's `replications` field records the count
    /// actually used, and because batches extend one index-derived stream
    /// sequence, an adaptive run of `n` replications is bit-identical to a
    /// fixed `run_with` of `n`.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or a
    /// confidence level outside `(0, 1)`.
    pub fn run_until(
        &self,
        horizon_hours: f64,
        rule: &StoppingRule,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<StorageSummary, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        let root = SimRng::seed_from_u64(seed);
        let runs = run_to_precision(
            rule,
            |range| -> Result<Vec<StorageRunStats>, RaidError> {
                Ok(probdist::parallel::replicate_with(
                    range,
                    &root,
                    workers,
                    || None,
                    |_, rng, slot| self.run_once_reusing(horizon_hours, rng, slot),
                ))
            },
            |runs: &[StorageRunStats]| -> Result<bool, RaidError> {
                let availability: RunningStats =
                    runs.iter().map(StorageRunStats::availability).collect();
                let per_week: RunningStats =
                    runs.iter().map(StorageRunStats::replacements_per_week).collect();
                for stats in [&availability, &per_week] {
                    let interval = confidence_interval(stats, confidence_level)?;
                    if !rule.met_by(&interval) {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )?;
        self.summarise(&runs, horizon_hours, confidence_level)
    }

    /// Aggregates raw replication results into a [`StorageSummary`].
    fn summarise(
        &self,
        runs: &[StorageRunStats],
        horizon_hours: f64,
        confidence_level: f64,
    ) -> Result<StorageSummary, RaidError> {
        summarise_runs(runs, horizon_hours, confidence_level)
    }

    /// Runs a single mission and returns its raw statistics.
    pub fn run_once(&self, horizon_hours: f64, rng: &mut SimRng) -> StorageRunStats {
        let mut mission = self.start_mission(horizon_hours, rng);
        mission.advance(rng, None);
        let stats = mission.finish();
        record_mission(&stats);
        stats
    }

    /// Runs a single mission, reusing the mission in `slot` as scratch when
    /// present (and stashing a fresh one there otherwise). Re-priming draws
    /// initial lifetimes in exactly the order [`StorageSimulator::start_mission`]
    /// does, so the statistics are bit-identical to [`StorageSimulator::run_once`]
    /// with the same RNG stream — only the allocations differ.
    pub fn run_once_reusing(
        &self,
        horizon_hours: f64,
        rng: &mut SimRng,
        slot: &mut Option<StorageMission>,
    ) -> StorageRunStats {
        match slot {
            Some(mission) => mission.reprime(horizon_hours, rng),
            None => *slot = Some(self.start_mission(horizon_hours, rng)),
        }
        let mission = slot.as_mut().expect("mission was just initialised");
        mission.advance(rng, None);
        let stats = mission.stats();
        record_mission(&stats);
        stats
    }

    /// Starts a mission in resumable form: initial disk lifetimes (and
    /// controller failure times, when configured) are drawn and the event
    /// calendar is primed, but no event has been processed.
    /// [`StorageMission::advance`] then runs it — to the horizon, or only
    /// until an exposure-depth level (concurrent failed disks within one
    /// tier) is first reached, the restart primitive of the
    /// multilevel-splitting estimator ([`crate::splitting`]).
    pub fn start_mission(&self, horizon_hours: f64, rng: &mut SimRng) -> StorageMission {
        let cfg = &self.config;
        let total_disks = cfg.total_disks();
        let mut queue: BinaryHeap<Event> = BinaryHeap::with_capacity(total_disks as usize + 8);
        let controller_dist = cfg
            .controllers
            .map(|c| Exponential::new(c.failure_rate_per_hour).expect("validated controller rate"));
        prime_events(&self.lifetime, controller_dist.as_ref(), cfg, &mut queue, rng);
        StorageMission {
            config: self.config.clone(),
            lifetime: self.lifetime,
            controller_dist,
            horizon_hours,
            queue,
            disk_generation: vec![0u32; total_disks as usize],
            disk_failed: vec![false; total_disks as usize],
            tier_failed_count: vec![0u32; cfg.tiers as usize],
            tier_in_recovery: vec![false; cfg.tiers as usize],
            tier_generation: vec![0u32; cfg.tiers as usize],
            controller_failed: vec![[false, false]; cfg.ddn_units as usize],
            exposure_peak: 0,
            down_conditions: 0,
            controller_down_units: 0,
            last_time: 0.0,
            downtime: 0.0,
            controller_downtime: 0.0,
            data_loss_events: 0,
            replacements: 0,
        }
    }
}

/// Primes a mission's event calendar: one lifetime draw per disk, then one
/// failure draw per controller slot. The draw order here *is* the RNG
/// contract shared by [`StorageSimulator::start_mission`] and
/// [`StorageMission::reprime`]; keep the two call sites on this single
/// helper so they cannot drift apart.
fn prime_events(
    lifetime: &Weibull,
    controller_dist: Option<&Exponential>,
    cfg: &StorageConfig,
    queue: &mut BinaryHeap<Event>,
    rng: &mut SimRng,
) {
    for disk in 0..cfg.total_disks() {
        queue.push(Event {
            time: lifetime.sample(rng),
            kind: EventKind::DiskFailure { disk, generation: 0 },
        });
    }
    if let Some(dist) = controller_dist {
        for unit in 0..cfg.ddn_units {
            for slot in 0..2u8 {
                queue.push(Event {
                    time: dist.sample(rng),
                    kind: EventKind::ControllerFailure { unit, slot },
                });
            }
        }
    }
}

/// One RAID-storage mission in resumable form: the full Markov state of
/// the event-driven kernel (pending events, per-disk and per-tier state,
/// controller pairs, and the downtime accumulators).
///
/// A mission is `Clone`, so the multilevel-splitting estimator can
/// snapshot it the moment an exposure level — concurrent failed disks
/// within a single tier — is first reached and restart many continuation
/// trials from the same state, each with its own RNG stream.
#[derive(Debug, Clone)]
pub struct StorageMission {
    config: StorageConfig,
    lifetime: Weibull,
    controller_dist: Option<Exponential>,
    horizon_hours: f64,
    queue: BinaryHeap<Event>,
    disk_generation: Vec<u32>,
    disk_failed: Vec<bool>,
    tier_failed_count: Vec<u32>,
    tier_in_recovery: Vec<bool>,
    tier_generation: Vec<u32>,
    controller_failed: Vec<[bool; 2]>,
    /// Highest concurrent failed-disk count seen in any single tier
    /// (monotone — the splitting level function).
    exposure_peak: u32,
    down_conditions: u32,
    controller_down_units: u32,
    last_time: f64,
    downtime: f64,
    controller_downtime: f64,
    data_loss_events: u64,
    replacements: u64,
}

impl StorageMission {
    /// Highest concurrent failed-disk count reached in any single tier:
    /// `parity + 1` is the data-loss level.
    pub fn exposure_peak(&self) -> u32 {
        self.exposure_peak
    }

    /// Data-loss events recorded so far.
    pub fn data_loss_events(&self) -> u64 {
        self.data_loss_events
    }

    /// The exposure depth at which a tier loses data (`parity + 1`).
    pub fn loss_level(&self) -> u32 {
        self.config.geometry.parity_disks + 1
    }

    /// Processes events forward. With `stop_at_exposure = Some(level)` the
    /// mission pauses right after the event that first lifts the exposure
    /// peak to `level`, returning `true`; otherwise it runs to the horizon
    /// and returns `false`. A paused mission resumes with a later call.
    pub fn advance(&mut self, rng: &mut SimRng, stop_at_exposure: Option<u32>) -> bool {
        if let Some(level) = stop_at_exposure {
            if self.exposure_peak >= level {
                return true;
            }
        }
        let disks_per_tier = self.config.geometry.disks_per_tier();
        let parity = self.config.geometry.parity_disks;
        let repair_time = self.config.replacement_hours + self.config.rebuild_hours;

        while let Some(event) = self.queue.pop() {
            let t = event.time;
            if t > self.horizon_hours {
                break;
            }
            // Accumulate downtime since the previous event.
            if self.down_conditions > 0 {
                self.downtime += t - self.last_time;
            }
            if self.controller_down_units > 0 {
                self.controller_downtime += t - self.last_time;
            }
            self.last_time = t;

            match event.kind {
                EventKind::DiskFailure { disk, generation } => {
                    if generation != self.disk_generation[disk as usize]
                        || self.disk_failed[disk as usize]
                    {
                        continue;
                    }
                    let tier = disk / disks_per_tier;
                    if self.tier_in_recovery[tier as usize] {
                        continue;
                    }
                    self.disk_failed[disk as usize] = true;
                    self.tier_failed_count[tier as usize] += 1;
                    self.exposure_peak =
                        self.exposure_peak.max(self.tier_failed_count[tier as usize]);
                    self.replacements += 1;

                    if self.tier_failed_count[tier as usize] > parity {
                        // Unrecoverable tier failure.
                        self.data_loss_events += 1;
                        self.tier_in_recovery[tier as usize] = true;
                        self.tier_generation[tier as usize] += 1;
                        self.down_conditions += 1;
                        // Invalidate every pending event of this tier's disks
                        // and clear their state; they come back fresh when the
                        // tier is restored.
                        let first = tier * disks_per_tier;
                        for d in first..first + disks_per_tier {
                            self.disk_generation[d as usize] += 1;
                            self.disk_failed[d as usize] = false;
                        }
                        self.tier_failed_count[tier as usize] = 0;
                        self.queue.push(Event {
                            time: t + self.config.data_loss_recovery_hours,
                            kind: EventKind::TierRecovered {
                                tier,
                                generation: self.tier_generation[tier as usize],
                            },
                        });
                    } else {
                        self.queue.push(Event {
                            time: t + repair_time,
                            kind: EventKind::DiskRestored { disk, generation },
                        });
                    }
                    if let Some(level) = stop_at_exposure {
                        if self.exposure_peak >= level {
                            return true;
                        }
                    }
                }
                EventKind::DiskRestored { disk, generation } => {
                    if generation != self.disk_generation[disk as usize]
                        || !self.disk_failed[disk as usize]
                    {
                        continue;
                    }
                    let tier = disk / disks_per_tier;
                    self.disk_failed[disk as usize] = false;
                    self.tier_failed_count[tier as usize] -= 1;
                    self.queue.push(Event {
                        time: t + self.lifetime.sample(rng),
                        kind: EventKind::DiskFailure { disk, generation },
                    });
                }
                EventKind::TierRecovered { tier, generation } => {
                    if generation != self.tier_generation[tier as usize]
                        || !self.tier_in_recovery[tier as usize]
                    {
                        continue;
                    }
                    self.tier_in_recovery[tier as usize] = false;
                    self.down_conditions -= 1;
                    // All disks in the tier start fresh.
                    let first = tier * disks_per_tier;
                    for d in first..first + disks_per_tier {
                        self.queue.push(Event {
                            time: t + self.lifetime.sample(rng),
                            kind: EventKind::DiskFailure {
                                disk: d,
                                generation: self.disk_generation[d as usize],
                            },
                        });
                    }
                }
                EventKind::ControllerFailure { unit, slot } => {
                    let pair = &mut self.controller_failed[unit as usize];
                    if pair[slot as usize] {
                        continue;
                    }
                    pair[slot as usize] = true;
                    if pair[0] && pair[1] {
                        self.controller_down_units += 1;
                        self.down_conditions += 1;
                    }
                    let repair = self
                        .config
                        .controllers
                        .expect("controller events only exist when configured")
                        .repair_hours;
                    self.queue.push(Event {
                        time: t + repair,
                        kind: EventKind::ControllerRepaired { unit, slot },
                    });
                }
                EventKind::ControllerRepaired { unit, slot } => {
                    let pair = &mut self.controller_failed[unit as usize];
                    if !pair[slot as usize] {
                        continue;
                    }
                    let was_double = pair[0] && pair[1];
                    pair[slot as usize] = false;
                    if was_double {
                        self.controller_down_units -= 1;
                        self.down_conditions -= 1;
                    }
                    if let Some(dist) = &self.controller_dist {
                        self.queue.push(Event {
                            time: t + dist.sample(rng),
                            kind: EventKind::ControllerFailure { unit, slot },
                        });
                    }
                }
            }
        }
        false
    }

    /// Resets this mission in place to the state
    /// [`StorageSimulator::start_mission`] would produce for the same
    /// configuration, reusing the event queue and per-disk/per-tier buffers.
    fn reprime(&mut self, horizon_hours: f64, rng: &mut SimRng) {
        let total_disks = self.config.total_disks() as usize;
        let tiers = self.config.tiers as usize;
        self.horizon_hours = horizon_hours;
        self.queue.clear();
        self.disk_generation.clear();
        self.disk_generation.resize(total_disks, 0);
        self.disk_failed.clear();
        self.disk_failed.resize(total_disks, false);
        self.tier_failed_count.clear();
        self.tier_failed_count.resize(tiers, 0);
        self.tier_in_recovery.clear();
        self.tier_in_recovery.resize(tiers, false);
        self.tier_generation.clear();
        self.tier_generation.resize(tiers, 0);
        self.controller_failed.clear();
        self.controller_failed.resize(self.config.ddn_units as usize, [false, false]);
        self.exposure_peak = 0;
        self.down_conditions = 0;
        self.controller_down_units = 0;
        self.last_time = 0.0;
        self.downtime = 0.0;
        self.controller_downtime = 0.0;
        self.data_loss_events = 0;
        self.replacements = 0;
        let StorageMission { config, lifetime, controller_dist, queue, .. } = self;
        prime_events(lifetime, controller_dist.as_ref(), config, queue, rng);
    }

    /// Raw statistics of the mission so far, with the open interval since
    /// the last event closed up to the horizon. Call after
    /// [`StorageMission::advance`] ran to the horizon.
    pub fn stats(&self) -> StorageRunStats {
        let mut downtime = self.downtime;
        let mut controller_downtime = self.controller_downtime;
        // Close the interval up to the horizon.
        if self.down_conditions > 0 {
            downtime += self.horizon_hours - self.last_time;
        }
        if self.controller_down_units > 0 {
            controller_downtime += self.horizon_hours - self.last_time;
        }
        StorageRunStats {
            downtime_hours: downtime,
            data_loss_events: self.data_loss_events,
            disk_replacements: self.replacements,
            controller_downtime_hours: controller_downtime,
            horizon_hours: self.horizon_hours,
        }
    }

    /// Closes the mission and returns its raw statistics. Call after
    /// [`StorageMission::advance`] ran to the horizon.
    pub fn finish(self) -> StorageRunStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModel, RaidGeometry};

    fn quick_config() -> StorageConfig {
        let mut c = StorageConfig::abe_scratch();
        c.controllers = None;
        c
    }

    #[test]
    fn run_validates_parameters() {
        let sim = StorageSimulator::new(quick_config()).unwrap();
        assert!(sim.run(0.0, 8, 1).is_err());
        assert!(sim.run(-10.0, 8, 1).is_err());
        assert!(sim.run(100.0, 1, 1).is_err());
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut c = quick_config();
        c.tiers = 0;
        assert!(StorageSimulator::new(c).is_err());
    }

    #[test]
    fn abe_scale_availability_is_essentially_one() {
        // Figure 2, first data point: every configuration at ABE scale has
        // nearly 100 % storage availability.
        let sim = StorageSimulator::new(quick_config()).unwrap();
        let summary = sim.run(8760.0, 24, 3).unwrap();
        assert!(summary.availability.point > 0.9999, "availability {}", summary.availability.point);
        assert!(summary.prob_any_data_loss < 0.1);
    }

    #[test]
    fn abe_replacement_rate_is_zero_to_two_per_week() {
        let sim = StorageSimulator::new(quick_config()).unwrap();
        let summary = sim.run(8760.0, 24, 5).unwrap();
        let per_week = summary.replacements_per_week.point;
        assert!(per_week > 0.2 && per_week < 3.0, "replacements per week {per_week}");
    }

    #[test]
    fn replacement_rate_scales_linearly_with_disk_count() {
        let mut small = quick_config();
        small.tiers = 48;
        let mut large = quick_config();
        large.tiers = 480;
        let s = StorageSimulator::new(small).unwrap().run(4380.0, 16, 7).unwrap();
        let l = StorageSimulator::new(large).unwrap().run(4380.0, 16, 7).unwrap();
        let ratio = l.replacements_per_week.point / s.replacements_per_week.point;
        assert!((ratio - 10.0).abs() < 2.5, "ratio {ratio}");
    }

    #[test]
    fn weaker_redundancy_loses_more_data() {
        // RAID5 (8+1) with a very unreliable disk and slow replacement should
        // show clearly lower availability than RAID6 (8+2) at the same scale.
        let mut raid5 = quick_config();
        raid5.geometry = RaidGeometry::raid5_8p1();
        raid5.tiers = 480;
        raid5.ddn_units = 20;
        raid5.disk = DiskModel { weibull_shape: 0.7, mtbf_hours: 20_000.0, capacity_gb: 250.0 };
        raid5.replacement_hours = 24.0;
        raid5.rebuild_hours = 24.0;

        let mut raid6 = raid5.clone();
        raid6.geometry = RaidGeometry::raid6_8p2();

        let a5 = StorageSimulator::new(raid5).unwrap().run(8760.0, 16, 11).unwrap();
        let a6 = StorageSimulator::new(raid6).unwrap().run(8760.0, 16, 11).unwrap();
        assert!(a5.data_loss_events.point > a6.data_loss_events.point);
        assert!(a5.availability.point <= a6.availability.point + 1e-12);
    }

    #[test]
    fn more_parity_helps_at_petascale() {
        // (8+3) should be at least as available as (8+2) on a pessimistic
        // petascale configuration — the Blue Waters design argument.
        let mut base = quick_config();
        base.tiers = 960;
        base.ddn_units = 20;
        base.disk = DiskModel { weibull_shape: 0.6, mtbf_hours: 50_000.0, capacity_gb: 250.0 };
        base.replacement_hours = 12.0;
        base.rebuild_hours = 24.0;

        let mut plus3 = base.clone();
        plus3.geometry = RaidGeometry::raid_8p3();

        let a2 = StorageSimulator::new(base).unwrap().run(8760.0, 16, 13).unwrap();
        let a3 = StorageSimulator::new(plus3).unwrap().run(8760.0, 16, 13).unwrap();
        assert!(a3.availability.point >= a2.availability.point - 1e-6);
        assert!(a3.data_loss_events.point <= a2.data_loss_events.point + 1e-9);
    }

    #[test]
    fn controller_double_faults_cause_downtime_but_no_data_loss() {
        let mut c = quick_config();
        // Make controller failures frequent and repairs slow so double faults
        // are common, while disks are extremely reliable.
        c.controllers = Some(crate::ControllerModel {
            failure_rate_per_hour: 1.0 / 100.0,
            repair_hours: 100.0,
        });
        c.disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 1e9, capacity_gb: 250.0 };
        let sim = StorageSimulator::new(c).unwrap();
        let summary = sim.run(8760.0, 16, 17).unwrap();
        assert!(summary.availability.point < 0.999, "controller faults should cause downtime");
        assert!(summary.data_loss_events.point < 1e-9);
    }

    #[test]
    fn adaptive_run_stops_within_bounds_and_matches_fixed() {
        let sim = StorageSimulator::new(quick_config()).unwrap();
        let rule = StoppingRule::new(0.25, 4, 32).unwrap();
        let adaptive = sim.run_until(8760.0, &rule, 9, 0.95, 2).unwrap();
        assert!(
            adaptive.replications >= 4 && adaptive.replications <= 32,
            "used {} replications",
            adaptive.replications
        );
        // Bit-identical to a fixed run of the same length and seed.
        let fixed = sim.run_with(8760.0, adaptive.replications, 9, 0.95, 1).unwrap();
        assert_eq!(adaptive, fixed);
    }

    #[test]
    fn adaptive_run_validates_parameters() {
        let sim = StorageSimulator::new(quick_config()).unwrap();
        let rule = StoppingRule::new(0.25, 4, 32).unwrap();
        assert!(sim.run_until(0.0, &rule, 1, 0.95, 1).is_err());
        assert!(sim.run_until(100.0, &rule, 1, 1.5, 1).is_err());
    }

    #[test]
    fn results_are_deterministic_for_a_seed() {
        let sim = StorageSimulator::new(quick_config()).unwrap();
        let a = sim.run(4380.0, 8, 21).unwrap();
        let b = sim.run(4380.0, 8, 21).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn run_stats_accessors() {
        let stats = StorageRunStats {
            downtime_hours: 87.36,
            data_loss_events: 1,
            disk_replacements: 52,
            controller_downtime_hours: 0.0,
            horizon_hours: 8736.0, // exactly 52 weeks
        };
        assert!((stats.availability() - 0.99).abs() < 1e-12);
        assert!((stats.replacements_per_week() - 1.0).abs() < 1e-9);
    }
}
