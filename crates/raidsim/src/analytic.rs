//! Closed-form reliability approximations used to cross-check the
//! Monte-Carlo simulation.
//!
//! Under exponential disk lifetimes (rate `λ = 1/MTBF`) and exponential
//! repair (rate `μ = 1/MTTR`), the classical Markov-chain approximation for
//! the mean time to data loss (MTTDL) of an `n+k` redundancy group that
//! dies when `k+1` disks are simultaneously failed is
//!
//! ```text
//! MTTDL ≈ μ^k / ( Π_{i=0..k} (N−i)·λ^(k+1) )   with N = n+k
//! ```
//!
//! i.e. every additional parity disk buys another factor of `μ / (N·λ)`.
//! These formulas ignore infant mortality (the Weibull shape) and treat the
//! repair as exponential, so they are *approximations*; the tests check that
//! the Monte-Carlo engine agrees with them within the accuracy expected of
//! the approximation for exponential disks.

use crate::{RaidError, RaidGeometry};

/// Mean time to data loss (hours) of a single `n+k` tier with per-disk
/// failure rate `1/mtbf_hours` and mean repair time `mttr_hours`.
///
/// # Errors
///
/// Returns [`RaidError::InvalidConfig`] if any parameter is non-positive.
pub fn tier_mttdl(
    geometry: RaidGeometry,
    mtbf_hours: f64,
    mttr_hours: f64,
) -> Result<f64, RaidError> {
    geometry.validate()?;
    if mtbf_hours <= 0.0 || mttr_hours <= 0.0 {
        return Err(RaidError::InvalidConfig {
            reason: "MTBF and MTTR must be positive for the MTTDL approximation".into(),
        });
    }
    let n = geometry.disks_per_tier() as f64;
    let k = geometry.parity_disks as f64;
    let lambda = 1.0 / mtbf_hours;
    let mu = 1.0 / mttr_hours;

    // Product of the failure rates along the path 0 -> 1 -> ... -> k+1
    // failed disks.
    let mut path_rate = 1.0;
    for i in 0..=(k as u32) {
        path_rate *= (n - i as f64) * lambda;
    }
    Ok(mu.powf(k) / path_rate)
}

/// Probability that a single tier suffers data loss within `mission_hours`,
/// using the exponential approximation `1 − exp(−t / MTTDL)`.
///
/// # Errors
///
/// Propagates errors from [`tier_mttdl`].
pub fn tier_data_loss_probability(
    geometry: RaidGeometry,
    mtbf_hours: f64,
    mttr_hours: f64,
    mission_hours: f64,
) -> Result<f64, RaidError> {
    let mttdl = tier_mttdl(geometry, mtbf_hours, mttr_hours)?;
    Ok(1.0 - (-mission_hours / mttdl).exp())
}

/// Probability that a system of `tiers` independent tiers suffers at least
/// one data loss within `mission_hours`.
///
/// # Errors
///
/// Propagates errors from [`tier_mttdl`].
pub fn system_data_loss_probability(
    tiers: u32,
    geometry: RaidGeometry,
    mtbf_hours: f64,
    mttr_hours: f64,
    mission_hours: f64,
) -> Result<f64, RaidError> {
    let p_tier = tier_data_loss_probability(geometry, mtbf_hours, mttr_hours, mission_hours)?;
    Ok(1.0 - (1.0 - p_tier).powi(tiers as i32))
}

/// Expected storage availability of a system of `tiers` tiers when every
/// data loss causes `recovery_hours` of downtime: the expected number of
/// data-loss events per tier is `mission / MTTDL`, each costing
/// `recovery_hours`.
///
/// # Errors
///
/// Propagates errors from [`tier_mttdl`].
pub fn expected_availability(
    tiers: u32,
    geometry: RaidGeometry,
    mtbf_hours: f64,
    mttr_hours: f64,
    mission_hours: f64,
    recovery_hours: f64,
) -> Result<f64, RaidError> {
    let mttdl = tier_mttdl(geometry, mtbf_hours, mttr_hours)?;
    let expected_losses = tiers as f64 * mission_hours / mttdl;
    let downtime = (expected_losses * recovery_hours).min(mission_hours);
    Ok(1.0 - downtime / mission_hours)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskModel, StorageConfig, StorageSimulator};

    #[test]
    fn mttdl_rejects_bad_parameters() {
        assert!(tier_mttdl(RaidGeometry::raid6_8p2(), 0.0, 10.0).is_err());
        assert!(tier_mttdl(RaidGeometry::raid6_8p2(), 1000.0, -1.0).is_err());
        assert!(tier_mttdl(RaidGeometry { data_disks: 0, parity_disks: 1 }, 1000.0, 1.0).is_err());
    }

    #[test]
    fn mttdl_grows_with_parity_and_mtbf() {
        let m_8p1 = tier_mttdl(RaidGeometry::raid5_8p1(), 300_000.0, 10.0).unwrap();
        let m_8p2 = tier_mttdl(RaidGeometry::raid6_8p2(), 300_000.0, 10.0).unwrap();
        let m_8p3 = tier_mttdl(RaidGeometry::raid_8p3(), 300_000.0, 10.0).unwrap();
        assert!(m_8p2 > m_8p1 * 100.0, "each parity disk buys orders of magnitude");
        assert!(m_8p3 > m_8p2 * 100.0);

        let better_disk = tier_mttdl(RaidGeometry::raid6_8p2(), 3_000_000.0, 10.0).unwrap();
        assert!(better_disk > m_8p2);
    }

    #[test]
    fn mttdl_matches_hand_computed_value() {
        // RAID5 2+1 (N=3, k=1), MTBF 1000 h, MTTR 10 h:
        // MTTDL = mu / (3λ * 2λ) = (1/10) / (6e-6) = 16 666.67 h.
        let geometry = RaidGeometry { data_disks: 2, parity_disks: 1 };
        let mttdl = tier_mttdl(geometry, 1000.0, 10.0).unwrap();
        assert!((mttdl - 16_666.666).abs() / 16_666.666 < 1e-6, "mttdl {mttdl}");
    }

    #[test]
    fn data_loss_probability_is_monotone_in_mission_and_tiers() {
        let g = RaidGeometry::raid6_8p2();
        let p1 = tier_data_loss_probability(g, 100_000.0, 24.0, 8_760.0).unwrap();
        let p2 = tier_data_loss_probability(g, 100_000.0, 24.0, 87_600.0).unwrap();
        assert!(p2 > p1);
        let s1 = system_data_loss_probability(48, g, 100_000.0, 24.0, 8_760.0).unwrap();
        let s2 = system_data_loss_probability(4800, g, 100_000.0, 24.0, 8_760.0).unwrap();
        assert!(s2 > s1);
        assert!((0.0..=1.0).contains(&s2));
    }

    #[test]
    fn expected_availability_decreases_with_scale() {
        let g = RaidGeometry::raid6_8p2();
        let a_small = expected_availability(48, g, 100_000.0, 30.0, 8760.0, 24.0).unwrap();
        let a_large = expected_availability(7680, g, 100_000.0, 30.0, 8760.0, 24.0).unwrap();
        assert!(a_small >= a_large);
        assert!(a_small > 0.999_99);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_for_exponential_disks() {
        // Use exponential lifetimes (shape 1) and an aggressive configuration
        // so the simulation sees enough data-loss events to compare: 2+1
        // tiers of very unreliable disks with slow repair.
        let geometry = RaidGeometry { data_disks: 2, parity_disks: 1 };
        let mtbf = 2_000.0;
        let repair = 50.0;
        let config = StorageConfig {
            ddn_units: 1,
            tiers: 100,
            geometry,
            disk: DiskModel { weibull_shape: 1.0, mtbf_hours: mtbf, capacity_gb: 250.0 },
            replacement_hours: repair,
            rebuild_hours: 0.0,
            data_loss_recovery_hours: 24.0,
            controllers: None,
        };
        let mission = 8_760.0;
        let sim = StorageSimulator::new(config).unwrap();
        let summary = sim.run(mission, 64, 9).unwrap();

        let mttdl = tier_mttdl(geometry, mtbf, repair).unwrap();
        let expected_losses_per_system = 100.0 * mission / mttdl;
        let simulated = summary.data_loss_events.point;
        // The Markov approximation is only first-order accurate; require
        // agreement within 40 % which is ample to catch structural bugs
        // (e.g. off-by-one in the parity threshold changes this by >10x).
        let ratio = simulated / expected_losses_per_system;
        assert!(
            ratio > 0.6 && ratio < 1.65,
            "simulated {simulated}, analytic {expected_losses_per_system}"
        );
    }
}
