use std::error::Error;
use std::fmt;

use probdist::DistError;

/// Error type for storage-reliability configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RaidError {
    /// A configuration value was rejected.
    InvalidConfig {
        /// Explanation of the rejected configuration.
        reason: String,
    },
    /// A simulation run was asked for with invalid parameters (zero
    /// replications, non-positive horizon, …).
    InvalidRun {
        /// Explanation of the rejected run parameters.
        reason: String,
    },
    /// A distribution or estimation error surfaced from the statistics
    /// layer.
    Distribution(DistError),
}

impl fmt::Display for RaidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaidError::InvalidConfig { reason } => {
                write!(f, "invalid storage configuration: {reason}")
            }
            RaidError::InvalidRun { reason } => write!(f, "invalid simulation run: {reason}"),
            RaidError::Distribution(e) => write!(f, "distribution error: {e}"),
        }
    }
}

impl Error for RaidError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RaidError::Distribution(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DistError> for RaidError {
    fn from(e: DistError) -> Self {
        RaidError::Distribution(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RaidError::InvalidConfig { reason: "zero tiers".into() };
        assert!(e.to_string().contains("zero tiers"));
        let e: RaidError = DistError::EmptyData.into();
        assert!(Error::source(&e).is_some());
    }
}
