use serde::{Deserialize, Serialize};

use probdist::{Afr, Mtbf, Weibull};

use crate::RaidError;

/// RAID group geometry: `data + parity` disks per tier.
///
/// The tier survives as long as at most `parity` of its disks are failed at
/// the same time; one more concurrent failure loses the tier's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RaidGeometry {
    /// Number of data disks per tier (8 for the S2A9550).
    pub data_disks: u32,
    /// Number of parity/spare-capacity disks per tier (2 for RAID6 8+2,
    /// 3 for the Blue Waters 8+3 design).
    pub parity_disks: u32,
}

impl RaidGeometry {
    /// The ABE S2A9550 geometry: RAID6 (8+2).
    pub fn raid6_8p2() -> Self {
        RaidGeometry { data_disks: 8, parity_disks: 2 }
    }

    /// The Blue Waters design point: (8+3).
    pub fn raid_8p3() -> Self {
        RaidGeometry { data_disks: 8, parity_disks: 3 }
    }

    /// RAID5-style single parity (8+1), used as a pessimistic baseline.
    pub fn raid5_8p1() -> Self {
        RaidGeometry { data_disks: 8, parity_disks: 1 }
    }

    /// RAID10 as used by the metadata EF2800: 5 mirrored pairs presented as
    /// one tier of 10 disks tolerating one failure per pair; approximated
    /// here as (5+5).
    pub fn raid10_5p5() -> Self {
        RaidGeometry { data_disks: 5, parity_disks: 5 }
    }

    /// Total disks per tier.
    pub fn disks_per_tier(&self) -> u32 {
        self.data_disks + self.parity_disks
    }

    /// Short label used in figure legends, e.g. `"8+2"`.
    pub fn label(&self) -> String {
        format!("{}+{}", self.data_disks, self.parity_disks)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] if either count is zero.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.data_disks == 0 || self.parity_disks == 0 {
            return Err(RaidError::InvalidConfig {
                reason: format!("RAID geometry needs data and parity disks, got {}", self.label()),
            });
        }
        Ok(())
    }
}

/// Reliability model of an individual disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Weibull shape parameter of the lifetime distribution (β ≈ 0.7 on
    /// ABE; 1.0 gives exponential lifetimes; values below 1 model infant
    /// mortality).
    pub weibull_shape: f64,
    /// Mean lifetime (MTBF), hours.
    pub mtbf_hours: f64,
    /// Usable capacity per disk, gigabytes (250 GB on ABE in 2007).
    pub capacity_gb: f64,
}

impl DiskModel {
    /// The ABE scratch-partition disk: Weibull(0.7) with a 300 000-hour MTBF
    /// (AFR ≈ 2.92 %), 250 GB.
    pub fn abe_sata_250gb() -> Self {
        DiskModel { weibull_shape: 0.7, mtbf_hours: 300_000.0, capacity_gb: 250.0 }
    }

    /// Same disk with a different annualized failure rate, keeping the ABE
    /// Weibull shape. Used for the AFR sweeps of Figures 2 and 3.
    ///
    /// # Errors
    ///
    /// Returns an error if `afr_percent` is not a valid AFR.
    pub fn with_afr(afr_percent: f64, weibull_shape: f64) -> Result<Self, RaidError> {
        let afr = Afr::new(afr_percent)?;
        Ok(DiskModel { weibull_shape, mtbf_hours: afr.to_mtbf().hours(), capacity_gb: 250.0 })
    }

    /// The disk's AFR implied by its MTBF.
    pub fn afr(&self) -> Afr {
        Mtbf::new(self.mtbf_hours).expect("validated mtbf").to_afr()
    }

    /// The lifetime distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are not positive.
    pub fn lifetime(&self) -> Result<Weibull, RaidError> {
        Ok(Weibull::from_shape_and_mean(self.weibull_shape, self.mtbf_hours)?)
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.weibull_shape <= 0.0 || self.mtbf_hours <= 0.0 || self.capacity_gb <= 0.0 {
            return Err(RaidError::InvalidConfig {
                reason: format!(
                    "disk model parameters must be positive (shape {}, mtbf {}, capacity {})",
                    self.weibull_shape, self.mtbf_hours, self.capacity_gb
                ),
            });
        }
        Ok(())
    }
}

/// RAID-controller fail-over pair model (one pair per DDN unit).
///
/// The controllers of a pair fail independently at `failure_rate_per_hour`;
/// while *both* are failed the unit's tiers are unavailable (but no data is
/// lost). Repairs take `repair_hours` because parts must be shipped from the
/// vendor (12–36 h per Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerModel {
    /// Failure rate of a single controller, per hour.
    pub failure_rate_per_hour: f64,
    /// Repair time of a failed controller, hours.
    pub repair_hours: f64,
}

impl ControllerModel {
    /// The ABE controller model: roughly two failures per controller per
    /// year, repaired in 24 hours on average (within the 12–36 h hardware
    /// repair range of Table 5). The Table 5 "1–2 per 720 h" hardware rate
    /// covers *all* SAN hardware (OSS nodes, network ports, controllers);
    /// only a small share of those events are RAID-controller failures.
    pub fn abe_default() -> Self {
        ControllerModel { failure_rate_per_hour: 2.0 / 8760.0, repair_hours: 24.0 }
    }

    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.failure_rate_per_hour <= 0.0 || self.repair_hours <= 0.0 {
            return Err(RaidError::InvalidConfig {
                reason: "controller failure rate and repair time must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Configuration of a complete scratch-partition storage system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Number of DDN units (S2A9550s); tiers are split evenly across them.
    pub ddn_units: u32,
    /// Total number of RAID tiers across all DDN units.
    pub tiers: u32,
    /// RAID geometry of every tier.
    pub geometry: RaidGeometry,
    /// Disk reliability model.
    pub disk: DiskModel,
    /// Time to physically replace a failed disk, hours (1–12 h sweep in the
    /// paper; 4 h nominal).
    pub replacement_hours: f64,
    /// Additional time to rebuild the replaced disk's contents, hours.
    pub rebuild_hours: f64,
    /// Time to restore a tier after an unrecoverable (data-loss) failure,
    /// hours. The tier and its dependants are unavailable for this long.
    pub data_loss_recovery_hours: f64,
    /// Optional RAID-controller fail-over pairs (one pair per DDN unit).
    pub controllers: Option<ControllerModel>,
}

impl StorageConfig {
    /// The ABE scratch partition: 2 S2A9550 units, 48 tiers of (8+2)
    /// 250 GB SATA disks (480 disks, 96 TB usable), 4-hour disk
    /// replacement.
    ///
    /// Controller fail-over pairs are *not* included here: Figure 2
    /// evaluates "the RAID6 tiers and the RAID controllers in isolation from
    /// failures of other components of the SAN", and in this reproduction
    /// the controller/OSS/network hardware is modelled by the composed CFS
    /// model (`cfs-model` crate). Use
    /// [`StorageConfig::abe_scratch_with_controllers`] to include the
    /// controller overlay in the storage simulation itself.
    pub fn abe_scratch() -> Self {
        StorageConfig {
            ddn_units: 2,
            tiers: 48,
            geometry: RaidGeometry::raid6_8p2(),
            disk: DiskModel::abe_sata_250gb(),
            replacement_hours: 4.0,
            rebuild_hours: 6.0,
            data_loss_recovery_hours: 24.0,
            controllers: None,
        }
    }

    /// [`StorageConfig::abe_scratch`] plus RAID-controller fail-over pairs
    /// (one dual-controller pair per DDN unit).
    pub fn abe_scratch_with_controllers() -> Self {
        StorageConfig {
            controllers: Some(ControllerModel::abe_default()),
            ..StorageConfig::abe_scratch()
        }
    }

    /// Total number of disks in the system.
    pub fn total_disks(&self) -> u32 {
        self.tiers * self.geometry.disks_per_tier()
    }

    /// Usable capacity in terabytes (data disks only).
    pub fn usable_capacity_tb(&self) -> f64 {
        self.tiers as f64 * self.geometry.data_disks as f64 * self.disk.capacity_gb / 1000.0
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] describing the first problem
    /// found.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.ddn_units == 0 {
            return Err(RaidError::InvalidConfig {
                reason: "at least one DDN unit is required".into(),
            });
        }
        if self.tiers == 0 {
            return Err(RaidError::InvalidConfig {
                reason: "at least one tier is required".into(),
            });
        }
        if !self.tiers.is_multiple_of(self.ddn_units) {
            return Err(RaidError::InvalidConfig {
                reason: format!(
                    "{} tiers cannot be split evenly across {} DDN units",
                    self.tiers, self.ddn_units
                ),
            });
        }
        self.geometry.validate()?;
        self.disk.validate()?;
        if self.replacement_hours <= 0.0
            || self.rebuild_hours < 0.0
            || self.data_loss_recovery_hours <= 0.0
        {
            return Err(RaidError::InvalidConfig {
                reason: "replacement, rebuild, and recovery times must be positive".into(),
            });
        }
        if let Some(c) = &self.controllers {
            c.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_presets_and_labels() {
        assert_eq!(RaidGeometry::raid6_8p2().disks_per_tier(), 10);
        assert_eq!(RaidGeometry::raid_8p3().disks_per_tier(), 11);
        assert_eq!(RaidGeometry::raid6_8p2().label(), "8+2");
        assert_eq!(RaidGeometry::raid5_8p1().label(), "8+1");
        assert_eq!(RaidGeometry::raid10_5p5().label(), "5+5");
        assert!(RaidGeometry::raid6_8p2().validate().is_ok());
        assert!(RaidGeometry { data_disks: 0, parity_disks: 2 }.validate().is_err());
        assert!(RaidGeometry { data_disks: 8, parity_disks: 0 }.validate().is_err());
    }

    #[test]
    fn abe_disk_model_matches_paper_parameters() {
        let d = DiskModel::abe_sata_250gb();
        assert!((d.afr().percent() - 2.92).abs() < 0.01);
        assert!(d.lifetime().unwrap().has_infant_mortality());
        assert!(d.validate().is_ok());
    }

    #[test]
    fn with_afr_constructs_matching_mtbf() {
        let d = DiskModel::with_afr(8.76, 0.7).unwrap();
        assert!((d.mtbf_hours - 100_000.0).abs() < 1.0);
        assert!(DiskModel::with_afr(0.0, 0.7).is_err());
        assert!(DiskModel::with_afr(150.0, 0.7).is_err());
    }

    #[test]
    fn disk_model_validation_rejects_bad_values() {
        let mut d = DiskModel::abe_sata_250gb();
        d.weibull_shape = 0.0;
        assert!(d.validate().is_err());
        let mut d = DiskModel::abe_sata_250gb();
        d.capacity_gb = -1.0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn abe_scratch_config_matches_section_3_2() {
        let c = StorageConfig::abe_scratch();
        assert_eq!(c.total_disks(), 480);
        assert!((c.usable_capacity_tb() - 96.0).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn storage_config_validation() {
        let mut c = StorageConfig::abe_scratch();
        c.tiers = 0;
        assert!(c.validate().is_err());

        let mut c = StorageConfig::abe_scratch();
        c.ddn_units = 0;
        assert!(c.validate().is_err());

        let mut c = StorageConfig::abe_scratch();
        c.tiers = 49; // not divisible by 2 DDN units
        assert!(c.validate().is_err());

        let mut c = StorageConfig::abe_scratch();
        c.replacement_hours = 0.0;
        assert!(c.validate().is_err());

        let mut c = StorageConfig::abe_scratch();
        c.controllers = Some(ControllerModel { failure_rate_per_hour: 0.0, repair_hours: 1.0 });
        assert!(c.validate().is_err());
    }

    #[test]
    fn controller_model_default_rate_is_a_fraction_of_table5_hardware_rate() {
        let c = ControllerModel::abe_default();
        // Table 5's hardware rate (1-2 per 720 h) covers all SAN hardware;
        // the controller share must be a small fraction of it but non-zero.
        let per_720 = c.failure_rate_per_hour * 720.0;
        assert!(per_720 > 0.0 && per_720 < 1.0, "per 720h {per_720}");
        assert!((12.0..=36.0).contains(&c.repair_hours));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn abe_scratch_with_controllers_adds_the_overlay() {
        let c = StorageConfig::abe_scratch_with_controllers();
        assert!(c.controllers.is_some());
        assert!(c.validate().is_ok());
        assert!(StorageConfig::abe_scratch().controllers.is_none());
    }
}
