//! n-way object replication: the GFS/HDFS/MinIO-style alternative to RAID
//! reconstruction.
//!
//! Instead of grouping disks into parity tiers, replicated object stores
//! keep `r` full copies of every object, scattered across the cluster.
//! When a disk fails its objects are *re-replicated in the background*:
//! every surviving disk holding a lost replica streams it to a different
//! disk, so redundancy is restored by the whole cluster in parallel —
//! typically minutes to a few hours, far faster than a single-spindle RAID
//! rebuild — while the physical replacement of the failed drive proceeds
//! independently and only restores raw capacity.
//!
//! # Model
//!
//! A cluster of [`ReplicationConfig::disks`] disks holds objects with
//! [`ReplicationConfig::replicas`] copies under random placement. The
//! Monte-Carlo kernel tracks, per mission:
//!
//! * **Disk failures** — Weibull lifetimes from the shared [`DiskModel`]
//!   (the same infant-mortality model the RAID simulator uses, so
//!   comparisons hold the hardware fixed). Every failure is one disk
//!   replacement; the disk rejoins with a fresh lifetime after
//!   [`ReplicationConfig::replacement_hours`].
//! * **Re-replication** — a failed disk's objects are *exposed* (one
//!   replica short) until the background copy completes after
//!   [`ReplicationConfig::re_replication_hours`].
//! * **Data loss** — with many objects under random placement, losing `r`
//!   disks whose exposure windows overlap loses the objects that had all
//!   `r` replicas on exactly those disks; this kernel applies the standard
//!   pessimistic approximation that *any* `replicas` concurrently-exposed
//!   failures lose some object. Recovery (restore from a cold tier /
//!   re-ingest) takes [`ReplicationConfig::data_loss_recovery_hours`],
//!   during which the store is unavailable. Short of that, failures are
//!   masked by the surviving replicas and cost no availability.
//!
//! The results are reported as the same [`StorageSummary`] the RAID
//! simulator produces, through the same statistics pipeline, so
//! replication-vs-RAID comparisons (at equal *usable* capacity — see
//! [`ReplicationConfig::for_usable_capacity`]) reduce to comparing
//! summaries.
//!
//! # Example
//!
//! ```
//! use raidsim::{DiskModel, ReplicationConfig, ReplicationSimulator};
//!
//! # fn main() -> Result<(), raidsim::RaidError> {
//! // 96 TB usable under 3-way replication with ABE's disks.
//! let config = ReplicationConfig::for_usable_capacity(96.0, 3, DiskModel::abe_sata_250gb());
//! let summary = ReplicationSimulator::new(config)?.run(8760.0, 16, 7)?;
//! assert!(summary.availability.point > 0.999);
//! # Ok(())
//! # }
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use probdist::stats::{confidence_interval, run_to_precision, RunningStats, StoppingRule};
use probdist::{Distribution, SimRng, Weibull};
use serde::{Deserialize, Serialize};

use crate::storage::{summarise_runs, validate_run};
use crate::{DiskModel, RaidError, StorageRunStats, StorageSummary};

/// Configuration of an n-way replicated object store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Total number of disks in the cluster.
    pub disks: u32,
    /// Copies kept of every object (`r`); the store tolerates `r − 1`
    /// overlapping exposure windows without data loss.
    pub replicas: u32,
    /// Reliability model of each disk.
    pub disk: DiskModel,
    /// Hours until a failed disk's objects are fully re-replicated by the
    /// surviving cluster (the redundancy-restoration window; minutes to a
    /// few hours for a distributed store).
    pub re_replication_hours: f64,
    /// Hours to physically replace the failed drive (restores raw
    /// capacity; does not gate redundancy).
    pub replacement_hours: f64,
    /// Hours to restore lost objects from a cold tier after a data-loss
    /// event, during which the store is unavailable.
    pub data_loss_recovery_hours: f64,
}

impl ReplicationConfig {
    /// A cluster sized to `usable_tb` terabytes of usable capacity under
    /// `replicas`-way replication: raw capacity is `replicas ×` usable, so
    /// the disk count is `⌈usable · replicas / disk capacity⌉`.
    ///
    /// Defaults mirror the ABE operational assumptions: 4-hour drive
    /// replacement, 2-hour distributed re-replication, 24-hour data-loss
    /// recovery.
    pub fn for_usable_capacity(usable_tb: f64, replicas: u32, disk: DiskModel) -> Self {
        let disks = (usable_tb * 1000.0 * replicas as f64 / disk.capacity_gb).ceil() as u32;
        ReplicationConfig {
            disks: disks.max(replicas),
            replicas,
            disk,
            re_replication_hours: 2.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        }
    }

    /// Usable capacity in terabytes (raw capacity divided by the
    /// replication factor).
    pub fn usable_capacity_tb(&self) -> f64 {
        self.disks as f64 * self.disk.capacity_gb / self.replicas as f64 / 1000.0
    }

    /// Storage overhead: raw bytes stored per usable byte (`r` for `r`-way
    /// replication; compare `(n+k)/n` for RAID).
    pub fn storage_overhead(&self) -> f64 {
        self.replicas as f64
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] describing the first problem
    /// found: fewer disks than replicas, a replication factor of zero, an
    /// invalid disk model, or non-positive repair windows.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.replicas == 0 {
            return Err(RaidError::InvalidConfig {
                reason: "replication factor must be at least 1".into(),
            });
        }
        if self.disks < self.replicas {
            return Err(RaidError::InvalidConfig {
                reason: format!(
                    "{} disks cannot host {}-way replication (need at least one disk per replica)",
                    self.disks, self.replicas
                ),
            });
        }
        self.disk.validate()?;
        if self.re_replication_hours <= 0.0
            || self.replacement_hours <= 0.0
            || self.data_loss_recovery_hours <= 0.0
        {
            return Err(RaidError::InvalidConfig {
                reason: "re-replication, replacement, and recovery times must be positive".into(),
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A disk's lifetime expired.
    DiskFailure { disk: u32, generation: u32 },
    /// One exposure window closed: a failed disk's objects regained full
    /// redundancy. Stamped with the store generation (not a disk) because
    /// a data-loss recovery closes every open window collectively.
    ReReplicated { store_generation: u32 },
    /// The replaced drive rejoined the cluster with a fresh lifetime.
    DiskReplaced { disk: u32, generation: u32 },
    /// Lost objects were restored from the cold tier.
    StoreRecovered { store_generation: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse the time ordering so BinaryHeap pops the earliest event.
        other.time.total_cmp(&self.time)
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven Monte-Carlo simulator of an n-way replicated object store.
///
/// See the module documentation for the modelled failure, re-replication,
/// and data-loss behaviour.
#[derive(Debug, Clone)]
pub struct ReplicationSimulator {
    config: ReplicationConfig,
    lifetime: Weibull,
}

impl ReplicationSimulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidConfig`] if the configuration fails
    /// validation.
    pub fn new(config: ReplicationConfig) -> Result<Self, RaidError> {
        config.validate()?;
        let lifetime = config.disk.lifetime()?;
        Ok(ReplicationSimulator { config, lifetime })
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Runs `replications` independent missions of `horizon_hours` each at
    /// the 95 % confidence level with an auto-sized worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or
    /// fewer than two replications.
    pub fn run(
        &self,
        horizon_hours: f64,
        replications: usize,
        seed: u64,
    ) -> Result<StorageSummary, RaidError> {
        self.run_with(horizon_hours, replications, seed, 0.95, 0)
    }

    /// Runs `replications` independent missions with an explicit confidence
    /// level and worker count. Replication `i` draws from the RNG stream
    /// derived from its own index and results reduce in index order, so the
    /// statistics are bit-identical for any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon, fewer
    /// than two replications, or a confidence level outside `(0, 1)`.
    pub fn run_with(
        &self,
        horizon_hours: f64,
        replications: usize,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<StorageSummary, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        if replications < 2 {
            return Err(RaidError::InvalidRun {
                reason: "at least two replications are required".into(),
            });
        }
        let root = SimRng::seed_from_u64(seed);
        // Each worker keeps one mission as scratch: after the first
        // replication, later missions re-prime the same event queue and
        // per-disk state in place instead of allocating afresh.
        let runs: Vec<StorageRunStats> = probdist::parallel::replicate_with(
            0..replications,
            &root,
            workers,
            || None,
            |_, rng, slot| self.run_once_reusing(horizon_hours, rng, slot),
        );
        summarise_runs(&runs, horizon_hours, confidence_level)
    }

    /// Runs replication batches until `rule` is satisfied (availability and
    /// replacements-per-week both within the target relative half-width) or
    /// its cap is reached — the same adaptive contract as
    /// [`crate::StorageSimulator::run_until`]: an adaptive run of `n`
    /// replications is bit-identical to a fixed run of `n`.
    ///
    /// # Errors
    ///
    /// Returns [`RaidError::InvalidRun`] for a non-positive horizon or a
    /// confidence level outside `(0, 1)`.
    pub fn run_until(
        &self,
        horizon_hours: f64,
        rule: &StoppingRule,
        seed: u64,
        confidence_level: f64,
        workers: usize,
    ) -> Result<StorageSummary, RaidError> {
        validate_run(horizon_hours, confidence_level)?;
        let root = SimRng::seed_from_u64(seed);
        let runs = run_to_precision(
            rule,
            |range| -> Result<Vec<StorageRunStats>, RaidError> {
                Ok(probdist::parallel::replicate_with(
                    range,
                    &root,
                    workers,
                    || None,
                    |_, rng, slot| self.run_once_reusing(horizon_hours, rng, slot),
                ))
            },
            |runs: &[StorageRunStats]| -> Result<bool, RaidError> {
                let availability: RunningStats =
                    runs.iter().map(super::storage::StorageRunStats::availability).collect();
                let per_week: RunningStats = runs
                    .iter()
                    .map(super::storage::StorageRunStats::replacements_per_week)
                    .collect();
                for stats in [&availability, &per_week] {
                    let interval = confidence_interval(stats, confidence_level)?;
                    if !rule.met_by(&interval) {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
        )?;
        summarise_runs(&runs, horizon_hours, confidence_level)
    }

    /// Runs a single mission and returns its raw statistics.
    pub fn run_once(&self, horizon_hours: f64, rng: &mut SimRng) -> StorageRunStats {
        let mut mission = self.start_mission(horizon_hours, rng);
        mission.advance(rng, None);
        let stats = mission.finish();
        super::storage::record_mission(&stats);
        stats
    }

    /// Runs a single mission, reusing the mission in `slot` as scratch when
    /// present (and stashing a fresh one there otherwise). Re-priming draws
    /// initial lifetimes in exactly the order
    /// [`ReplicationSimulator::start_mission`] does, so the statistics are
    /// bit-identical to [`ReplicationSimulator::run_once`] with the same RNG
    /// stream — only the allocations differ.
    pub fn run_once_reusing(
        &self,
        horizon_hours: f64,
        rng: &mut SimRng,
        slot: &mut Option<ReplicationMission>,
    ) -> StorageRunStats {
        match slot {
            Some(mission) => mission.reprime(horizon_hours, rng),
            None => *slot = Some(self.start_mission(horizon_hours, rng)),
        }
        let mission = slot.as_mut().expect("mission was just initialised");
        mission.advance(rng, None);
        let stats = mission.stats();
        super::storage::record_mission(&stats);
        stats
    }

    /// Starts a mission in resumable form: the initial lifetimes are drawn
    /// and the event calendar is primed, but no event has been processed.
    /// [`ReplicationMission::advance`] then runs it — to the horizon, or
    /// only until an exposure-depth level is first reached, which is the
    /// primitive the multilevel-splitting estimator
    /// ([`crate::splitting`]) restarts trials from.
    pub fn start_mission(&self, horizon_hours: f64, rng: &mut SimRng) -> ReplicationMission {
        let disks = self.config.disks;
        let mut queue: BinaryHeap<Event> = BinaryHeap::with_capacity(disks as usize + 8);
        prime_events(&self.lifetime, disks, &mut queue, rng);
        ReplicationMission {
            config: self.config,
            lifetime: self.lifetime,
            horizon_hours,
            queue,
            generation: vec![0u32; disks as usize],
            failed: vec![false; disks as usize],
            exposed: 0,
            exposure_peak: 0,
            store_generation: 0,
            in_recovery: false,
            last_time: 0.0,
            downtime: 0.0,
            data_loss_events: 0,
            replacements: 0,
        }
    }
}

/// Primes a mission's event calendar: one lifetime draw per disk. The draw
/// order here *is* the RNG contract shared by
/// [`ReplicationSimulator::start_mission`] and
/// [`ReplicationMission::reprime`]; keep both call sites on this single
/// helper so they cannot drift apart.
fn prime_events(lifetime: &Weibull, disks: u32, queue: &mut BinaryHeap<Event>, rng: &mut SimRng) {
    for disk in 0..disks {
        queue.push(Event {
            time: lifetime.sample(rng),
            kind: EventKind::DiskFailure { disk, generation: 0 },
        });
    }
}

/// One replication-store mission in resumable form: the full Markov state
/// of the event-driven kernel (pending events, per-disk state, exposure
/// and recovery bookkeeping, and the downtime accumulators).
///
/// A mission is `Clone`, so the multilevel-splitting estimator can
/// snapshot it the moment an exposure level is first reached and restart
/// many continuation trials from the same state, each with its own RNG
/// stream — the cloned calendar carries the already-drawn future event
/// times (part of the Markov state), while everything sampled after the
/// snapshot comes from the continuation's stream.
#[derive(Debug, Clone)]
pub struct ReplicationMission {
    config: ReplicationConfig,
    lifetime: Weibull,
    horizon_hours: f64,
    queue: BinaryHeap<Event>,
    generation: Vec<u32>,
    failed: Vec<bool>,
    /// Disks whose objects are currently one replica short.
    exposed: u32,
    /// Highest concurrent exposure count seen so far (monotone — the
    /// splitting level function).
    exposure_peak: u32,
    store_generation: u32,
    in_recovery: bool,
    last_time: f64,
    downtime: f64,
    data_loss_events: u64,
    replacements: u64,
}

impl ReplicationMission {
    /// Highest concurrent exposure depth reached so far: `replicas`
    /// concurrently exposed disks is the data-loss level.
    pub fn exposure_peak(&self) -> u32 {
        self.exposure_peak
    }

    /// Data-loss events recorded so far.
    pub fn data_loss_events(&self) -> u64 {
        self.data_loss_events
    }

    /// The exposure depth at which this mission's store loses data.
    pub fn loss_level(&self) -> u32 {
        self.config.replicas
    }

    /// Processes events forward. With `stop_at_exposure = Some(level)` the
    /// mission pauses right after the event that first lifts the exposure
    /// peak to `level`, returning `true`; otherwise it runs to the horizon
    /// and returns `false`. A paused mission resumes with a later call.
    pub fn advance(&mut self, rng: &mut SimRng, stop_at_exposure: Option<u32>) -> bool {
        if let Some(level) = stop_at_exposure {
            if self.exposure_peak >= level {
                return true;
            }
        }
        let cfg = self.config;
        let disks = cfg.disks;
        let replicas = cfg.replicas;
        while let Some(event) = self.queue.pop() {
            let t = event.time;
            if t > self.horizon_hours {
                // Leave the popped event discarded, exactly as the
                // non-resumable kernel did: the mission is over.
                break;
            }
            if self.in_recovery {
                self.downtime += t - self.last_time;
            }
            self.last_time = t;

            match event.kind {
                EventKind::DiskFailure { disk, generation: g } => {
                    if g != self.generation[disk as usize]
                        || self.failed[disk as usize]
                        || self.in_recovery
                    {
                        // Failures popping during a recovery window need no
                        // reschedule: StoreRecovered restarts *every* disk
                        // with a fresh lifetime and a bumped generation.
                        continue;
                    }
                    self.failed[disk as usize] = true;
                    self.replacements += 1;
                    self.exposed += 1;
                    self.exposure_peak = self.exposure_peak.max(self.exposed);
                    self.queue.push(Event {
                        time: t + cfg.replacement_hours,
                        kind: EventKind::DiskReplaced { disk, generation: g },
                    });
                    if self.exposed >= replicas {
                        // Pessimistic random-placement approximation: r
                        // overlapping exposure windows lose some object.
                        self.data_loss_events += 1;
                        self.in_recovery = true;
                        self.store_generation += 1;
                        // The recovery restores full redundancy for every
                        // open window; bumping the store generation
                        // invalidates their pending ReReplicated events.
                        self.exposed = 0;
                        self.queue.push(Event {
                            time: t + cfg.data_loss_recovery_hours,
                            kind: EventKind::StoreRecovered {
                                store_generation: self.store_generation,
                            },
                        });
                    } else {
                        self.queue.push(Event {
                            time: t + cfg.re_replication_hours,
                            kind: EventKind::ReReplicated {
                                store_generation: self.store_generation,
                            },
                        });
                    }
                    if let Some(level) = stop_at_exposure {
                        if self.exposure_peak >= level {
                            return true;
                        }
                    }
                }
                EventKind::ReReplicated { store_generation: g } => {
                    // A stale stamp means a data-loss recovery already
                    // closed this window (and every other) collectively.
                    if g != self.store_generation {
                        continue;
                    }
                    // The window closes regardless of where the drive is in
                    // the replacement pipeline — redundancy lives in the
                    // surviving cluster, not in the replaced hardware.
                    self.exposed = self.exposed.saturating_sub(1);
                }
                EventKind::DiskReplaced { disk, generation: g } => {
                    if g != self.generation[disk as usize] || !self.failed[disk as usize] {
                        continue;
                    }
                    self.failed[disk as usize] = false;
                    self.queue.push(Event {
                        time: t + self.lifetime.sample(rng),
                        kind: EventKind::DiskFailure { disk, generation: g },
                    });
                }
                EventKind::StoreRecovered { store_generation: g } => {
                    if g != self.store_generation || !self.in_recovery {
                        continue;
                    }
                    self.in_recovery = false;
                    // The recovery re-ingested the store's objects; every
                    // disk — failed or healthy — restarts a fresh lifetime
                    // cycle (the same freeze-and-reset the RAID simulator
                    // applies per tier). The generation bump invalidates
                    // all pending per-disk events, including failures of
                    // healthy disks that were dropped during the window.
                    for disk in 0..disks {
                        self.failed[disk as usize] = false;
                        self.generation[disk as usize] += 1;
                        self.queue.push(Event {
                            time: t + self.lifetime.sample(rng),
                            kind: EventKind::DiskFailure {
                                disk,
                                generation: self.generation[disk as usize],
                            },
                        });
                    }
                }
            }
        }
        false
    }

    /// Resets this mission in place to the state
    /// [`ReplicationSimulator::start_mission`] would produce for the same
    /// configuration, reusing the event queue and per-disk buffers.
    fn reprime(&mut self, horizon_hours: f64, rng: &mut SimRng) {
        let disks = self.config.disks;
        self.horizon_hours = horizon_hours;
        self.queue.clear();
        self.generation.clear();
        self.generation.resize(disks as usize, 0);
        self.failed.clear();
        self.failed.resize(disks as usize, false);
        self.exposed = 0;
        self.exposure_peak = 0;
        self.store_generation = 0;
        self.in_recovery = false;
        self.last_time = 0.0;
        self.downtime = 0.0;
        self.data_loss_events = 0;
        self.replacements = 0;
        let ReplicationMission { lifetime, queue, .. } = self;
        prime_events(lifetime, disks, queue, rng);
    }

    /// Raw statistics of the mission so far, with the open interval since
    /// the last event closed up to the horizon. Call after
    /// [`ReplicationMission::advance`] ran to the horizon.
    pub fn stats(&self) -> StorageRunStats {
        let mut downtime = self.downtime;
        // Close the interval up to the horizon.
        if self.in_recovery {
            downtime += self.horizon_hours - self.last_time;
        }
        StorageRunStats {
            downtime_hours: downtime,
            data_loss_events: self.data_loss_events,
            disk_replacements: self.replacements,
            controller_downtime_hours: 0.0,
            horizon_hours: self.horizon_hours,
        }
    }

    /// Closes the mission and returns its raw statistics. Call after
    /// [`ReplicationMission::advance`] ran to the horizon.
    pub fn finish(self) -> StorageRunStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ReplicationConfig {
        ReplicationConfig::for_usable_capacity(96.0, 3, DiskModel::abe_sata_250gb())
    }

    #[test]
    fn capacity_sizing_matches_the_replication_factor() {
        let c = quick_config();
        // 96 TB usable × 3 replicas / 250 GB per disk = 1152 disks.
        assert_eq!(c.disks, 1152);
        assert!((c.usable_capacity_tb() - 96.0).abs() < 0.25);
        assert_eq!(c.storage_overhead(), 3.0);
        assert!(c.validate().is_ok());

        // Tiny usable capacities still allocate one disk per replica.
        let tiny = ReplicationConfig::for_usable_capacity(0.001, 3, DiskModel::abe_sata_250gb());
        assert!(tiny.disks >= 3);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = quick_config();
        c.replicas = 0;
        assert!(c.validate().is_err());

        let mut c = quick_config();
        c.disks = 2;
        assert!(c.validate().is_err());

        let mut c = quick_config();
        c.re_replication_hours = 0.0;
        assert!(c.validate().is_err());

        let mut c = quick_config();
        c.disk.mtbf_hours = -1.0;
        assert!(ReplicationSimulator::new(c).is_err());
    }

    #[test]
    fn run_validates_parameters() {
        let sim = ReplicationSimulator::new(quick_config()).unwrap();
        assert!(sim.run(0.0, 8, 1).is_err());
        assert!(sim.run(-10.0, 8, 1).is_err());
        assert!(sim.run(100.0, 1, 1).is_err());
        assert!(sim.run_with(100.0, 8, 1, 1.5, 1).is_err());
    }

    #[test]
    fn three_way_replication_is_essentially_always_available() {
        let sim = ReplicationSimulator::new(quick_config()).unwrap();
        let summary = sim.run(8760.0, 16, 3).unwrap();
        // Infant-mortality burn-in (all 1152 disks start at age 0) makes a
        // rare triple-overlap possible, so "essentially" is > 99.9 %, not
        // five nines.
        assert!(summary.availability.point > 0.999, "availability {}", summary.availability.point);
        assert!(summary.prob_any_data_loss < 0.5);
        // ~1152 disks at a 300k-hour MTBF: a few replacements a week.
        assert!(summary.replacements_per_week.point > 0.5);
        assert!(summary.replacements_per_week.point < 10.0);
    }

    #[test]
    fn fewer_replicas_lose_more_data() {
        // Stress the redundancy dimension at a *fixed disk count* (equal
        // capacity would give the 3-way store proportionally more disks
        // and wash out the comparison): unreliable disks with a slow
        // re-replication pipeline, identical hardware either side.
        let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 5_000.0, capacity_gb: 250.0 };
        let base = ReplicationConfig {
            disks: 100,
            replicas: 2,
            disk,
            re_replication_hours: 48.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let two = base;
        let three = ReplicationConfig { replicas: 3, ..base };

        let s2 = ReplicationSimulator::new(two).unwrap().run(8760.0, 16, 11).unwrap();
        let s3 = ReplicationSimulator::new(three).unwrap().run(8760.0, 16, 11).unwrap();
        assert!(
            s2.data_loss_events.point > s3.data_loss_events.point,
            "2-way {} vs 3-way {}",
            s2.data_loss_events.point,
            s3.data_loss_events.point
        );
        assert!(s2.availability.point <= s3.availability.point + 1e-12);
    }

    #[test]
    fn faster_re_replication_narrows_the_exposure_window() {
        let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 2_000.0, capacity_gb: 250.0 };
        let mut slow = ReplicationConfig::for_usable_capacity(24.0, 2, disk);
        slow.re_replication_hours = 96.0;
        let mut fast = slow;
        fast.re_replication_hours = 0.5;

        let s = ReplicationSimulator::new(slow).unwrap().run(8760.0, 16, 5).unwrap();
        let f = ReplicationSimulator::new(fast).unwrap().run(8760.0, 16, 5).unwrap();
        assert!(
            f.data_loss_events.point < s.data_loss_events.point,
            "fast {} vs slow {}",
            f.data_loss_events.point,
            s.data_loss_events.point
        );
    }

    /// Regression: a healthy disk whose failure event lands inside a
    /// data-loss recovery window used to become immortal (the event was
    /// consumed without a reschedule and `StoreRecovered` only restarted
    /// disks marked failed). Failure activity must be sustained across
    /// many recoveries.
    #[test]
    fn disks_keep_failing_after_data_loss_recoveries() {
        let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 10.0, capacity_gb: 250.0 };
        let config = ReplicationConfig {
            disks: 2,
            replicas: 2,
            disk,
            // Windows far longer than lifetimes: every second failure
            // overlaps and triggers a recovery.
            re_replication_hours: 1000.0,
            replacement_hours: 4.0,
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let summary = sim.run(5000.0, 8, 3).unwrap();
        // With ~10-hour lifetimes the loss/recover cycle repeats for the
        // whole mission; the immortal-disk bug froze it after the first
        // few events.
        assert!(
            summary.data_loss_events.point > 20.0,
            "recoveries must repeat all mission long, got {}",
            summary.data_loss_events.point
        );
        assert!(
            summary.replacements_per_week.point > 3.0,
            "failure activity must be sustained, got {} replacements/week",
            summary.replacements_per_week.point
        );
    }

    /// Regression: with `replacement_hours < re_replication_hours` the
    /// exposure counter used to leak (+1 per failure, never closed once
    /// the drive was replaced), manufacturing data-loss events from
    /// failures whose windows never overlapped.
    #[test]
    fn non_overlapping_exposure_windows_never_lose_data() {
        let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 50_000.0, capacity_gb: 250.0 };
        let config = ReplicationConfig {
            disks: 6,
            replicas: 3,
            disk,
            re_replication_hours: 48.0,
            replacement_hours: 1.0, // drive back long before the window closes
            data_loss_recovery_hours: 24.0,
        };
        let sim = ReplicationSimulator::new(config).unwrap();
        let summary = sim.run(30_000.0, 16, 9).unwrap();
        // ~3.6 failures per mission, ~50k hours apart on average, 48-hour
        // windows: a genuine triple overlap is essentially impossible, but
        // the leak made `exposed` hit 3 after any three lifetime failures.
        assert!(
            summary.data_loss_events.point < 0.1,
            "no data loss without overlapping windows, got {}",
            summary.data_loss_events.point
        );
        assert!(summary.replacements_per_week.point > 0.0);
    }

    #[test]
    fn results_are_deterministic_and_worker_invariant() {
        let sim = ReplicationSimulator::new(quick_config()).unwrap();
        let a = sim.run_with(4380.0, 8, 21, 0.95, 1).unwrap();
        let b = sim.run_with(4380.0, 8, 21, 0.95, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_run_stops_within_bounds_and_matches_fixed() {
        let sim = ReplicationSimulator::new(quick_config()).unwrap();
        let rule = StoppingRule::new(0.25, 4, 32).unwrap();
        let adaptive = sim.run_until(8760.0, &rule, 9, 0.95, 2).unwrap();
        assert!(
            adaptive.replications >= 4 && adaptive.replications <= 32,
            "used {} replications",
            adaptive.replications
        );
        let fixed = sim.run_with(8760.0, adaptive.replications, 9, 0.95, 1).unwrap();
        assert_eq!(adaptive, fixed);
        assert!(sim.run_until(0.0, &rule, 9, 0.95, 1).is_err());
    }
}
