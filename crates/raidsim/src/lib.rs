//! RAID tier, controller, and DDN storage-unit reliability models.
//!
//! The ABE cluster's scratch partition is served by two DataDirect Networks
//! S2A9550 units; each FC port connects three tiers of (8+2) SATA disks in
//! RAID6, for a total of 480 × 250 GB disks (Section 3.2 of the paper).
//! Disk lifetimes follow a Weibull distribution with shape ≈ 0.7 (Table 4),
//! failed disks are replaced within 1–12 hours, and the tier rebuilds onto
//! the replacement. A tier loses data only when more disks than the parity
//! count fail concurrently; the Blue Waters design moves from (8+2) to
//! (8+3) to push that probability down further.
//!
//! This crate provides:
//!
//! * [`StorageConfig`]/[`StorageSimulator`] — an event-driven Monte-Carlo
//!   simulation of an entire scratch partition (any number of DDN units ×
//!   tiers × disks, any `n+k` RAID geometry, optional RAID-controller
//!   fail-over pairs), producing storage availability, data-loss
//!   probability, and disk-replacement rates with confidence intervals.
//!   This is the engine behind Figures 2 and 3.
//! * [`replication`] — an n-way object-replication Monte-Carlo model
//!   (GFS/HDFS/MinIO style: background re-replication instead of RAID
//!   reconstruction), reporting the same [`StorageSummary`] so redundancy
//!   schemes compare at equal usable capacity.
//! * [`analytic`] — closed-form MTTDL (mean time to data loss)
//!   approximations for `n+k` redundancy with exponential failures, used to
//!   cross-check the simulation.
//! * [`replacement`] — expected replacement-rate calculations (renewal
//!   approximation plus the early-life correction implied by Weibull infant
//!   mortality).
//! * [`scaling`] — capacity planning helpers that translate a target usable
//!   capacity (96 TB … 12 PB) into disk, tier, and DDN-unit counts,
//!   accounting for the 33 % annual disk-capacity growth assumed in
//!   Table 5.
//!
//! # Example
//!
//! ```
//! use raidsim::{StorageConfig, StorageSimulator};
//!
//! # fn main() -> Result<(), raidsim::RaidError> {
//! // ABE's scratch partition: 48 tiers of (8+2) disks.
//! let config = StorageConfig::abe_scratch();
//! let summary = StorageSimulator::new(config)?.run(8760.0, 32, 7)?;
//! // RAID6 keeps ABE-scale storage essentially always available.
//! assert!(summary.availability.point > 0.999);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
mod config;
mod error;
pub mod replacement;
pub mod replication;
pub mod scaling;
pub mod splitting;
mod storage;

pub use config::{ControllerModel, DiskModel, RaidGeometry, StorageConfig};
pub use error::RaidError;
pub use replication::{ReplicationConfig, ReplicationMission, ReplicationSimulator};
pub use splitting::{SplittableMission, SplittingResult};
pub use storage::{StorageMission, StorageRunStats, StorageSimulator, StorageSummary};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StorageConfig>();
        assert_send_sync::<StorageSummary>();
        assert_send_sync::<RaidError>();
    }
}
