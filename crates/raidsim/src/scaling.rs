//! Capacity planning: translating a target usable capacity into disk, tier,
//! and DDN-unit counts.
//!
//! Figure 2 scales "the ABE cluster … by storage size in terabytes" from
//! 96 TB to 12 PB, and Table 5 lists an annual disk-capacity growth rate of
//! 33 % — by the time a petascale system is deployed, individual disks are
//! larger, so the petabyte system does not need 125× ABE's disk count.
//! These helpers implement both the naive scaling (same disks, more of
//! them) and the growth-adjusted scaling.

use serde::{Deserialize, Serialize};

use crate::{DiskModel, RaidError, RaidGeometry, StorageConfig};

/// Annual disk-capacity growth rate assumed in Table 5 (33 % per year).
pub const ANNUAL_CAPACITY_GROWTH: f64 = 0.33;

/// A storage scaling plan: how many tiers/disks/DDN units serve a target
/// usable capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePlan {
    /// Target usable capacity, terabytes.
    pub usable_tb: f64,
    /// Capacity of each disk used in the plan, gigabytes.
    pub disk_capacity_gb: f64,
    /// Number of RAID tiers required.
    pub tiers: u32,
    /// Total number of disks (data + parity).
    pub total_disks: u32,
    /// Number of DDN units (one per 24 tiers, as on ABE's S2A9550s).
    pub ddn_units: u32,
}

/// Tiers hosted by a single DDN unit on ABE (each S2A9550 serves 8 FC ports
/// × 3 tiers).
pub const TIERS_PER_DDN_UNIT: u32 = 24;

/// Computes the disk capacity available `years_in_future` years after the
/// ABE baseline, under the 33 % annual growth assumption.
pub fn grown_disk_capacity_gb(baseline_gb: f64, years_in_future: f64) -> f64 {
    baseline_gb * (1.0 + ANNUAL_CAPACITY_GROWTH).powf(years_in_future)
}

/// Plans a storage system for `usable_tb` terabytes of usable capacity using
/// disks of `disk_capacity_gb`, with `geometry` tiers.
///
/// # Errors
///
/// Returns [`RaidError::InvalidConfig`] if the capacity or disk size is not
/// positive or the geometry is invalid.
pub fn plan_for_capacity(
    usable_tb: f64,
    disk_capacity_gb: f64,
    geometry: RaidGeometry,
) -> Result<ScalePlan, RaidError> {
    geometry.validate()?;
    if usable_tb <= 0.0 || disk_capacity_gb <= 0.0 {
        return Err(RaidError::InvalidConfig {
            reason: format!(
                "capacity ({usable_tb} TB) and disk size ({disk_capacity_gb} GB) must be positive"
            ),
        });
    }
    let tb_per_tier = geometry.data_disks as f64 * disk_capacity_gb / 1000.0;
    let tiers = (usable_tb / tb_per_tier).ceil() as u32;
    let tiers = tiers.max(1);
    let ddn_units = tiers.div_ceil(TIERS_PER_DDN_UNIT);
    Ok(ScalePlan {
        usable_tb,
        disk_capacity_gb,
        tiers,
        total_disks: tiers * geometry.disks_per_tier(),
        ddn_units,
    })
}

/// Builds a [`StorageConfig`] from a scale plan, inheriting every
/// non-capacity parameter (disk reliability, repair times, controllers) from
/// `template`.
///
/// # Errors
///
/// Returns [`RaidError::InvalidConfig`] if the resulting configuration is
/// invalid.
pub fn config_from_plan(
    plan: &ScalePlan,
    template: &StorageConfig,
) -> Result<StorageConfig, RaidError> {
    // Keep tiers divisible by DDN units by rounding tiers up.
    let tiers = plan.tiers.div_ceil(plan.ddn_units) * plan.ddn_units;
    let config = StorageConfig {
        ddn_units: plan.ddn_units,
        tiers,
        geometry: template.geometry,
        disk: DiskModel { capacity_gb: plan.disk_capacity_gb, ..template.disk },
        replacement_hours: template.replacement_hours,
        rebuild_hours: template.rebuild_hours,
        data_loss_recovery_hours: template.data_loss_recovery_hours,
        controllers: template.controllers,
    };
    config.validate()?;
    Ok(config)
}

/// The capacity sweep of Figure 2: 96 TB (ABE) doubling up to 12 288 TB
/// (12 PB, the Blue Waters target).
pub fn figure2_capacity_points_tb() -> Vec<f64> {
    let mut points = Vec::new();
    let mut tb = 96.0;
    while tb <= 12_288.0 {
        points.push(tb);
        tb *= 2.0;
    }
    points
}

/// The disk-count sweep of Figure 3: 480 (ABE) to 4800 disks in steps of
/// 480.
pub fn figure3_disk_counts() -> Vec<u32> {
    (1..=10).map(|i| i * 480).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abe_plan_reproduces_the_real_deployment() {
        let plan = plan_for_capacity(96.0, 250.0, RaidGeometry::raid6_8p2()).unwrap();
        assert_eq!(plan.tiers, 48);
        assert_eq!(plan.total_disks, 480);
        assert_eq!(plan.ddn_units, 2);
    }

    #[test]
    fn petabyte_plan_with_same_disks_needs_125x_more() {
        let plan = plan_for_capacity(12_288.0, 250.0, RaidGeometry::raid6_8p2()).unwrap();
        assert_eq!(plan.tiers, 6144);
        assert_eq!(plan.total_disks, 61_440);
        assert_eq!(plan.ddn_units, 256);
    }

    #[test]
    fn capacity_growth_shrinks_future_disk_counts() {
        // Four years of 33 % growth roughly triples per-disk capacity.
        let future_gb = grown_disk_capacity_gb(250.0, 4.0);
        assert!(future_gb > 700.0 && future_gb < 900.0, "future {future_gb}");
        let naive = plan_for_capacity(12_288.0, 250.0, RaidGeometry::raid6_8p2()).unwrap();
        let grown = plan_for_capacity(12_288.0, future_gb, RaidGeometry::raid6_8p2()).unwrap();
        assert!(grown.total_disks < naive.total_disks / 2);
    }

    #[test]
    fn plan_validation() {
        assert!(plan_for_capacity(0.0, 250.0, RaidGeometry::raid6_8p2()).is_err());
        assert!(plan_for_capacity(96.0, 0.0, RaidGeometry::raid6_8p2()).is_err());
        assert!(plan_for_capacity(96.0, 250.0, RaidGeometry { data_disks: 0, parity_disks: 1 })
            .is_err());
    }

    #[test]
    fn config_from_plan_inherits_template_parameters() {
        let template = StorageConfig::abe_scratch();
        let plan = plan_for_capacity(768.0, 250.0, template.geometry).unwrap();
        let config = config_from_plan(&plan, &template).unwrap();
        assert_eq!(config.geometry, template.geometry);
        assert_eq!(config.replacement_hours, template.replacement_hours);
        assert!(config.tiers >= plan.tiers);
        assert_eq!(config.tiers % config.ddn_units, 0);
        assert!(config.usable_capacity_tb() >= 768.0 - 1e-9);
    }

    #[test]
    fn small_capacities_round_up_to_one_tier() {
        let plan = plan_for_capacity(0.5, 250.0, RaidGeometry::raid6_8p2()).unwrap();
        assert_eq!(plan.tiers, 1);
        assert_eq!(plan.ddn_units, 1);
    }

    #[test]
    fn figure_sweeps_match_the_paper_axes() {
        let caps = figure2_capacity_points_tb();
        assert_eq!(caps[0], 96.0);
        assert!(*caps.last().unwrap() <= 12_288.0);
        assert!(caps.len() >= 7, "96 TB doubling to 12 PB has at least 8 points");

        let disks = figure3_disk_counts();
        assert_eq!(disks[0], 480);
        assert_eq!(*disks.last().unwrap(), 4800);
        assert_eq!(disks.len(), 10);
    }
}
