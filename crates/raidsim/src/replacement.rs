//! Expected disk-replacement rates (the quantity plotted in Figure 3).
//!
//! For a population of `N` disk slots where every failed disk is promptly
//! replaced by a new one, the long-run replacement rate is governed by the
//! renewal theorem: `N / MTBF` replacements per hour regardless of the
//! lifetime distribution's shape. Early in life, however, a Weibull
//! population with infant mortality (shape < 1) fails *faster* than the
//! long-run rate; [`expected_replacements`] accounts for that by using the
//! renewal-equation solution for the Weibull renewal function, computed
//! numerically.

use probdist::{Distribution, Weibull};

use crate::{DiskModel, RaidError};

/// Long-run (renewal-theorem) replacement rate: disks replaced per week for
/// a population of `disks` slots.
///
/// # Errors
///
/// Returns [`RaidError::InvalidConfig`] if the disk model is invalid.
pub fn steady_state_replacements_per_week(disks: u32, disk: &DiskModel) -> Result<f64, RaidError> {
    disk.validate()?;
    Ok(disks as f64 / disk.mtbf_hours * 168.0)
}

/// Expected number of replacements for a population of `disks` *new* slots
/// over `window_hours`, computed from the Weibull renewal function.
///
/// The renewal function `m(t)` (expected renewals per slot by time `t`)
/// satisfies `m(t) = F(t) + ∫₀ᵗ m(t−x) dF(x)`; it is solved here on a
/// uniform grid by the standard discretised recursion, which is accurate to
/// the grid resolution and fast for the window lengths used in the paper
/// (months to a few years).
///
/// # Errors
///
/// Returns [`RaidError::InvalidConfig`] if the disk model is invalid or the
/// window is not positive.
pub fn expected_replacements(
    disks: u32,
    disk: &DiskModel,
    window_hours: f64,
) -> Result<f64, RaidError> {
    disk.validate()?;
    if !(window_hours.is_finite() && window_hours > 0.0) {
        return Err(RaidError::InvalidConfig {
            reason: format!("window must be positive, got {window_hours}"),
        });
    }
    let lifetime = disk.lifetime()?;
    let per_slot = weibull_renewal_function(&lifetime, window_hours, 2048);
    Ok(disks as f64 * per_slot)
}

/// Expected replacements per week averaged over the window (the Figure 3
/// y-axis).
///
/// # Errors
///
/// Propagates errors from [`expected_replacements`].
pub fn expected_replacements_per_week(
    disks: u32,
    disk: &DiskModel,
    window_hours: f64,
) -> Result<f64, RaidError> {
    Ok(expected_replacements(disks, disk, window_hours)? / (window_hours / 168.0))
}

/// Numerically solves the renewal function `m(t)` for a Weibull lifetime at
/// time `t`, using `steps` grid intervals.
fn weibull_renewal_function(lifetime: &Weibull, t: f64, steps: usize) -> f64 {
    let n = steps.max(8);
    let dt = t / n as f64;
    // f_cdf[i] = F(i*dt)
    let cdf: Vec<f64> = (0..=n).map(|i| lifetime.cdf(i as f64 * dt)).collect();
    let mut m = vec![0.0_f64; n + 1];
    for i in 1..=n {
        // m_i = F_i + Σ_{j=1..i} m_{i-j} * (F_j - F_{j-1})
        let mut conv = 0.0;
        for j in 1..=i {
            conv += m[i - j] * (cdf[j] - cdf[j - 1]);
        }
        m[i] = cdf[i] + conv;
    }
    m[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use probdist::SimRng;

    #[test]
    fn steady_state_rate_matches_renewal_theorem() {
        let disk = DiskModel::abe_sata_250gb();
        let rate = steady_state_replacements_per_week(480, &disk).unwrap();
        // 480 disks / 300 000 h * 168 h/week ≈ 0.27 per week.
        assert!((rate - 480.0 / 300_000.0 * 168.0).abs() < 1e-12);
    }

    #[test]
    fn infant_mortality_raises_early_life_replacements() {
        // For a brand-new Weibull(0.7) population the early replacement rate
        // exceeds the steady-state rate.
        let disk = DiskModel::abe_sata_250gb();
        let window = 2000.0;
        let early = expected_replacements_per_week(480, &disk, window).unwrap();
        let steady = steady_state_replacements_per_week(480, &disk).unwrap();
        assert!(early > steady, "early {early} vs steady {steady}");
        // ABE observed 0-2 replacements per week.
        assert!(early > 0.2 && early < 3.0, "early {early}");
    }

    #[test]
    fn exponential_population_matches_poisson_rate_exactly() {
        // With shape 1 the renewal function is exactly t/MTBF.
        let disk = DiskModel { weibull_shape: 1.0, mtbf_hours: 10_000.0, capacity_gb: 250.0 };
        let expected = expected_replacements(100, &disk, 5_000.0).unwrap();
        assert!(
            (expected - 100.0 * 5_000.0 / 10_000.0).abs() / expected < 0.01,
            "expected {expected}"
        );
    }

    #[test]
    fn replacement_rate_scales_linearly_with_disks_and_afr() {
        let d1 = DiskModel::with_afr(2.92, 0.7).unwrap();
        let d2 = DiskModel::with_afr(8.76, 0.7).unwrap();
        let window = 8760.0;
        let r_small = expected_replacements_per_week(480, &d1, window).unwrap();
        let r_large = expected_replacements_per_week(4800, &d1, window).unwrap();
        assert!((r_large / r_small - 10.0).abs() < 1e-6);
        let r_bad = expected_replacements_per_week(480, &d2, window).unwrap();
        assert!(r_bad > r_small * 2.0, "3x AFR should give clearly more replacements");
    }

    #[test]
    fn renewal_function_agrees_with_monte_carlo() {
        let disk = DiskModel { weibull_shape: 0.7, mtbf_hours: 5_000.0, capacity_gb: 250.0 };
        let lifetime = disk.lifetime().unwrap();
        let window = 3_000.0;
        let analytic = expected_replacements(1, &disk, window).unwrap();

        // Monte-Carlo renewal count for a single slot.
        let mut rng = SimRng::seed_from_u64(5);
        let reps = 20_000;
        let mut total = 0u64;
        for _ in 0..reps {
            let mut t = lifetime.sample(&mut rng);
            while t < window {
                total += 1;
                t += lifetime.sample(&mut rng);
            }
        }
        let mc = total as f64 / reps as f64;
        assert!((analytic - mc).abs() / mc < 0.05, "analytic {analytic} vs monte carlo {mc}");
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let disk = DiskModel::abe_sata_250gb();
        assert!(expected_replacements(480, &disk, 0.0).is_err());
        let mut bad = disk;
        bad.mtbf_hours = 0.0;
        assert!(expected_replacements(480, &bad, 100.0).is_err());
        assert!(steady_state_replacements_per_week(480, &bad).is_err());
    }
}
